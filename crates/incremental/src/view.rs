//! Incrementally maintained materialized view with row-id provenance —
//! the engine's cover-only fast path.
//!
//! Every base table is augmented with a hidden `__rid_<label>` column
//! holding a stable logical row id. The view (and every intermediate
//! node of its spec tree) is materialized once with those columns
//! threaded through, after which a delta batch against one base table is
//! delta-sized work:
//!
//! * **Deletes** — a view row sourced from a deleted base row is found by
//!   scanning the node's rid column (linear, no hashing), and removed by
//!   an ordinary [`Relation::apply_delta`](infine_relation::Relation::apply_delta)
//!   compaction. Inner-join trees are monotone, so removed base rows can
//!   only ever remove view rows.
//! * **Inserts** — the new view rows are exactly `Δ ⋈ (other sides)`, so
//!   the inserted base rows are joined *only against the cached sibling
//!   relations along the path to the root* — never recomputing an
//!   unchanged subtree.
//!
//! The view's minimal FD cover rides along in a [`CoverState`] over the
//! visible (non-rid) columns: dirty-class revalidation plus targeted
//! re-mining against the patched view, with no pipeline replay and no
//! base-table mining. This is what lets maintenance beat full
//! re-discovery by an order of magnitude on small deltas.
//!
//! Supported specs: any Select/Project tree over **inner** joins where no
//! base table appears twice (outer joins repad existing rows under
//! inserts, and repeated tables need inclusion–exclusion delta joins —
//! both fall back to the engine's exact-provenance path).

use crate::cover::{CoverDeltaStats, CoverState};
use crate::engine::{dict_entries, DeletePolicy, TombstoneStats, VacuumStats};
use infine_algebra::{
    join_relations, joined_schema, resolve, resolve_join_conditions, select_rows, JoinOp,
    Predicate, ViewSpec,
};
use infine_discovery::{extend_seeds, mine_new_fds_via, Algorithm, Fd, FdSet, Validity};
use infine_partitions::{JoinProbe, Pli, ProbeSink};
use infine_relation::{
    AppliedDelta, AttrId, AttrSet, Attribute, Column, Database, DeltaBatch, DictIndexes, Relation,
    RelationBuilder, Schema, Value,
};
use std::collections::{HashMap, HashSet};

/// One flattened node of the spec tree.
enum NodeOp {
    Base {
        table: String,
    },
    Select {
        child: usize,
        predicate: Predicate,
    },
    Project {
        child: usize,
        /// Resolved child column ids to keep (listed attrs + child rids).
        keep: Vec<AttrId>,
    },
    Join {
        left: usize,
        right: usize,
        /// Resolved (left id, right id) join pairs.
        on: Vec<(AttrId, AttrId)>,
    },
}

struct Node {
    op: NodeOp,
    /// Current materialized augmented relation of this node.
    rel: Relation,
    /// Base table → rid column id within `rel`.
    rid_cols: HashMap<String, AttrId>,
}

/// Persistent join-key index over one side of a join node: key values →
/// current row ids of that side's relation. Rebuilding the probe hash per
/// delta would cost a full pass over the big side every round; this index
/// is built once and carried across versions — deletions remap row ids
/// (integer work, no hashing), insertions hash only the delta rows.
#[derive(Default)]
struct JoinIndex {
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl JoinIndex {
    /// Build from a relation's join-key columns. Rows with a NULL key
    /// component are excluded (SQL join semantics: null matches nothing).
    fn build(rel: &Relation, keys: &[AttrId]) -> JoinIndex {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for row in 0..rel.nrows() {
            if let Some(key) = key_of(rel, row, keys) {
                map.entry(key).or_default().push(row as u32);
            }
        }
        JoinIndex { map }
    }

    /// Matching rows for one probe key.
    fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Carry the index across the indexed side's version change.
    fn patch(&mut self, new_rel: &Relation, keys: &[AttrId], applied: &AppliedDelta) {
        if applied.num_deleted() > 0 {
            self.map.retain(|_, rows| {
                rows.retain_mut(|r| match applied.remap[*r as usize] {
                    Some(new_id) => {
                        *r = new_id;
                        true
                    }
                    None => false,
                });
                !rows.is_empty()
            });
        }
        for row in applied.first_inserted as usize..applied.new_nrows {
            if let Some(key) = key_of(new_rel, row, keys) {
                self.map.entry(key).or_default().push(row as u32);
            }
        }
    }
}

/// Join-key values of one row; `None` when any component is NULL.
fn key_of(rel: &Relation, row: usize, keys: &[AttrId]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(keys.len());
    for &k in keys {
        if rel.is_null(row, k) {
            return None;
        }
        key.push(rel.value(row, k).clone());
    }
    Some(key)
}

/// Stable logical row ids for one base table, aligned with its current
/// row positions.
struct RidState {
    rids: Vec<i64>,
    next: i64,
}

/// The incrementally maintained augmented view plus its FD cover.
pub struct ViewState {
    nodes: Vec<Node>,
    root: usize,
    /// Visible (non-rid) column ids of the root relation, ascending.
    visible_ids: Vec<AttrId>,
    cover: CoverState,
    base_rids: HashMap<String, RidState>,
    /// Per-join-node persistent key indexes: `(left side, right side)`,
    /// keyed by node id. Kept outside [`Node`] so index patching can read
    /// child relations while mutating the index.
    join_indexes: HashMap<usize, (JoinIndex, JoinIndex)>,
    /// Per-node persistent value → dictionary-code indexes, so delta
    /// application never re-hashes a dictionary.
    dict_indexes: Vec<DictIndexes>,
    /// How delete batches hit the node relations (tombstoned nodes skip
    /// the per-round column compaction; see [`ViewState::vacuum`]).
    delete_policy: DeletePolicy,
}

/// Can the fast path maintain this spec? Inner joins only, each base
/// table at most once.
pub fn supports(spec: &ViewSpec) -> bool {
    fn walk(spec: &ViewSpec, tables: &mut HashSet<String>) -> bool {
        match spec {
            ViewSpec::Base { table, .. } => tables.insert(table.clone()),
            ViewSpec::Select { input, .. } | ViewSpec::Project { input, .. } => walk(input, tables),
            ViewSpec::Join {
                left, right, op, ..
            } => *op == JoinOp::Inner && walk(left, tables) && walk(right, tables),
        }
    }
    walk(spec, &mut HashSet::new())
}

/// Name of the hidden rid column for one base label.
fn rid_name(label: &str) -> String {
    format!("__rid_{label}")
}

impl ViewState {
    /// Materialize the augmented view bottom-up and mine its cover.
    pub fn bootstrap(
        db: &Database,
        spec: &ViewSpec,
        algorithm: Algorithm,
        delete_policy: DeletePolicy,
    ) -> Option<ViewState> {
        if !supports(spec) {
            return None;
        }
        let mut nodes: Vec<Node> = Vec::new();
        let root = build_node(db, spec, &mut nodes)?;
        let root_rel = &nodes[root].rel;
        let visible_ids: Vec<AttrId> = (0..root_rel.ncols())
            .filter(|&i| !root_rel.schema.name(i).starts_with("__rid_"))
            .collect();
        let visible: AttrSet = visible_ids.iter().copied().collect();
        let cover = CoverState::bootstrap(root_rel, visible, algorithm);
        let base_rids = nodes
            .iter()
            .filter_map(|n| match &n.op {
                NodeOp::Base { table } => Some((
                    table.clone(),
                    RidState {
                        rids: (0..n.rel.nrows() as i64).collect(),
                        next: n.rel.nrows() as i64,
                    },
                )),
                _ => None,
            })
            .collect();
        let join_indexes = nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                NodeOp::Join { left, right, on } => {
                    let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                    let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                    Some((
                        i,
                        (
                            JoinIndex::build(&nodes[*left].rel, &lkeys),
                            JoinIndex::build(&nodes[*right].rel, &rkeys),
                        ),
                    ))
                }
                _ => None,
            })
            .collect();
        let dict_indexes = nodes.iter().map(|n| DictIndexes::build(&n.rel)).collect();
        Some(ViewState {
            nodes,
            root,
            visible_ids,
            cover,
            base_rids,
            join_indexes,
            dict_indexes,
            delete_policy,
        })
    }

    /// The maintained minimal cover, densified onto the visible columns
    /// (ids match the real view's column order).
    pub fn dense_cover(&self) -> FdSet {
        let mut dense = vec![usize::MAX; self.nodes[self.root].rel.ncols()];
        for (d, &v) in self.visible_ids.iter().enumerate() {
            dense[v] = d;
        }
        self.cover
            .fds
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| dense[a]).collect::<AttrSet>(),
                    dense[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_minimal(fd);
                s
            })
    }

    /// Schema of the visible columns (the real view's schema).
    pub fn dense_schema(&self) -> Schema {
        let rel = &self.nodes[self.root].rel;
        let mut schema = Schema::new();
        for &v in &self.visible_ids {
            schema.push(rel.schema.attr(v).clone());
        }
        schema
    }

    /// Current number of (live) view rows.
    pub fn view_rows(&self) -> usize {
        self.nodes[self.root].rel.live_rows()
    }

    /// Is `table` one of the view's base tables?
    pub fn involves(&self, table: &str) -> bool {
        self.base_rids.contains_key(table)
    }

    /// Propagate one base-table batch through the node tree and maintain
    /// the cover. Returns `None` when the table is not part of the view.
    pub fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats> {
        self.base_rids.get(table)?;

        // Stable-id bookkeeping: which logical rows die, which are born.
        let rid_state = self.base_rids.get_mut(table).expect("checked above");
        let mut dead = vec![false; rid_state.rids.len()];
        for &d in &batch.deletes {
            dead[d as usize] = true;
        }
        let deleted_rids: HashSet<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| is_dead.then_some(rid))
            .collect();
        let fresh_rids: Vec<i64> = (0..batch.inserts.len() as i64)
            .map(|i| rid_state.next + i)
            .collect();
        rid_state.next += batch.inserts.len() as i64;
        let mut kept: Vec<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| (!is_dead).then_some(rid))
            .collect();
        kept.extend(&fresh_rids);
        rid_state.rids = kept;

        // Phase 1 — compute every changed node's Δ relation bottom-up.
        // Joins probe the *persistent* sibling index with the delta rows,
        // so the work is delta-sized — no pass over unchanged relations.
        let deltas: Vec<Option<Relation>> = {
            let mut deltas: Vec<Option<Relation>> = Vec::with_capacity(self.nodes.len());
            for (i, node) in self.nodes.iter().enumerate() {
                let d = match &node.op {
                    NodeOp::Base { table: t } => {
                        if t == table && !batch.inserts.is_empty() {
                            Some(augmented_rows(
                                &node.rel.schema,
                                &batch.inserts,
                                &fresh_rids,
                            ))
                        } else {
                            None
                        }
                    }
                    NodeOp::Select { child, predicate } => deltas[*child].as_ref().map(|d| {
                        let rows =
                            select_rows(d, predicate).expect("predicate resolved at bootstrap");
                        d.gather(&rows, format!("Δ{i}"))
                    }),
                    NodeOp::Project { child, keep } => deltas[*child]
                        .as_ref()
                        .map(|d| d.project(keep, format!("Δ{i}"))),
                    NodeOp::Join { left, right, on } => {
                        let (left_index, right_index) =
                            self.join_indexes.get(&i).expect("index built at bootstrap");
                        match (&deltas[*left], &deltas[*right]) {
                            (None, None) => None,
                            (Some(dl), None) => Some(probe_join(
                                dl,
                                &self.nodes[*right].rel,
                                right_index,
                                &on.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
                                &node.rel.schema,
                                true,
                            )),
                            (None, Some(dr)) => Some(probe_join(
                                dr,
                                &self.nodes[*left].rel,
                                left_index,
                                &on.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
                                &node.rel.schema,
                                false,
                            )),
                            (Some(_), Some(_)) => {
                                unreachable!("fast path rejects repeated base tables")
                            }
                        }
                    }
                };
                deltas.push(d);
            }
            deltas
        };

        // Phase 2 — apply one combined batch (rid-matched deletes + Δ
        // inserts) to every node above the changed table, remembering the
        // row remap so the join indexes can follow.
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let rid_col = match node.rid_cols.get(table) {
                Some(&c) => c,
                None => continue, // node not above the changed table
            };
            let mut node_batch = DeltaBatch::new();
            if !deleted_rids.is_empty() {
                // Translate deleted logical ids to this node's rows via
                // the rid column's dictionary codes: hash only the
                // deleted ids, then compare codes (pure integer scan).
                let rid_column = node.rel.column(rid_col);
                let dead_codes: HashSet<u32> = rid_column
                    .dict
                    .iter()
                    .enumerate()
                    .filter_map(|(code, v)| {
                        v.as_i64()
                            .filter(|rid| deleted_rids.contains(rid))
                            .map(|_| code as u32)
                    })
                    .collect();
                if !dead_codes.is_empty() {
                    for (row, code) in rid_column.codes.iter().enumerate() {
                        if dead_codes.contains(code) {
                            node_batch.delete(row as u32);
                        }
                    }
                }
            }
            if let Some(d) = &deltas[i] {
                for row in 0..d.nrows() {
                    node_batch.insert(d.row(row));
                }
            }
            // Consume the node's relation so dictionary extension reuses
            // the Arc in place (no deep clone on fresh values — rid
            // columns bring one every insert round). The rid scan above
            // names *physical* rows, which is exactly what the
            // tombstoned apply consumes — no row-map translation needed
            // at the node level.
            let name = node.rel.name.clone();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let (new_rel, applied) = match self.delete_policy {
                DeletePolicy::Compact => {
                    old.apply_delta_owned(&node_batch, name, &mut self.dict_indexes[i])
                }
                DeletePolicy::Tombstone => old.apply_delta_tombstoned(
                    &node_batch.deletes,
                    &node_batch.inserts,
                    name,
                    &mut self.dict_indexes[i],
                ),
            };
            node.rel = new_rel;
            applied_by_node[i] = Some(applied);
        }

        // Phase 2.5 — carry join indexes across their children's version
        // changes (delta-sized hashing, integer remaps).
        for (i, (left_index, right_index)) in self.join_indexes.iter_mut() {
            let NodeOp::Join { left, right, on } = &self.nodes[*i].op else {
                unreachable!("join_indexes only holds join nodes");
            };
            if let Some(applied) = &applied_by_node[*left] {
                let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                left_index.patch(&self.nodes[*left].rel, &lkeys, applied);
            }
            if let Some(applied) = &applied_by_node[*right] {
                let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                right_index.patch(&self.nodes[*right].rel, &rkeys, applied);
            }
        }

        // Phase 3 — bring the cover across the root's version change.
        let applied = applied_by_node[self.root]
            .take()
            .expect("root is above every base table");
        let stats = self.cover.maintain(&self.nodes[self.root].rel, &applied);
        Some(stats)
    }

    /// Memory accounting over every node relation (rid columns and their
    /// dictionaries included — the append-only growth a vacuum reclaims).
    pub fn tombstone_stats(&self) -> TombstoneStats {
        let mut stats = TombstoneStats::default();
        for node in &self.nodes {
            stats.merge(TombstoneStats::of(&node.rel));
        }
        stats
    }

    /// Vacuum every tombstoned node: drop dead rows, rewrite the rid
    /// columns, garbage-collect dictionaries (dead rid values and dead
    /// data values alike), carry the persistent join indexes across the
    /// row moves, rebase the root cover's PLIs and witnesses, and
    /// rebuild the per-node dictionary indexes. The maintained cover and
    /// the stable logical rids are unchanged.
    pub fn vacuum(&mut self) -> VacuumStats {
        let t0 = std::time::Instant::now();
        let mut stats = VacuumStats::default();
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.rel.has_tombstones() {
                continue;
            }
            stats.relations += 1;
            stats.rows_dropped += node.rel.tombstone_count();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let dicts_before = dict_entries(&old);
            let (v, applied) = old.vacuum();
            stats.dict_entries_dropped += dicts_before - dict_entries(&v);
            self.dict_indexes[i] = DictIndexes::build(&v);
            node.rel = v;
            applied_by_node[i] = Some(applied);
        }
        // Join indexes follow their children's row moves (values are
        // unchanged, so the keys stay valid — only row ids renumber).
        for (i, (left_index, right_index)) in self.join_indexes.iter_mut() {
            let NodeOp::Join { left, right, on } = &self.nodes[*i].op else {
                unreachable!("join_indexes only holds join nodes");
            };
            if let Some(applied) = &applied_by_node[*left] {
                let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                left_index.patch(&self.nodes[*left].rel, &lkeys, applied);
            }
            if let Some(applied) = &applied_by_node[*right] {
                let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                right_index.patch(&self.nodes[*right].rel, &rkeys, applied);
            }
        }
        if let Some(applied) = applied_by_node[self.root].take() {
            self.cover.rebase_rows(&self.nodes[self.root].rel, &applied);
        }
        stats.duration = t0.elapsed();
        stats
    }

    /// Soak/debug hook: the maintained cover must equal a from-scratch
    /// mine of the current root relation. O(full mine); tests only.
    pub fn self_check(&self) {
        self.cover.self_check(&self.nodes[self.root].rel);
    }
}

/// Build the augmented Δ relation for inserted base rows.
fn augmented_rows(schema: &Schema, inserts: &[Vec<Value>], rids: &[i64]) -> Relation {
    let mut builder = RelationBuilder::new("Δbase", schema.clone());
    for (row, &rid) in inserts.iter().zip(rids) {
        let mut r = row.clone();
        r.push(Value::Int(rid));
        builder.push_row(r);
    }
    builder.finish()
}

/// Join delta rows against the sibling side through its persistent index,
/// producing rows in the join node's schema (left columns then right).
/// Cost: `O(|Δ| + matches)` — the sibling relation is only row-gathered
/// at matched positions.
fn probe_join(
    delta: &Relation,
    other: &Relation,
    other_index: &JoinIndex,
    delta_keys: &[AttrId],
    schema: &Schema,
    delta_is_left: bool,
) -> Relation {
    let mut builder = RelationBuilder::new("Δ⋈", schema.clone());
    for row in 0..delta.nrows() {
        let Some(key) = key_of(delta, row, delta_keys) else {
            continue; // NULL key joins nothing
        };
        for &o in other_index.get(&key) {
            let vals = if delta_is_left {
                let mut v = delta.row(row);
                v.extend(other.row(o as usize));
                v
            } else {
                let mut v = other.row(o as usize);
                v.extend(delta.row(row));
                v
            };
            builder.push_row(vals);
        }
    }
    builder.finish()
}

/// Recursively materialize `spec` (augmented), appending to `nodes`;
/// returns the node index, or `None` if resolution fails.
fn build_node(db: &Database, spec: &ViewSpec, nodes: &mut Vec<Node>) -> Option<usize> {
    let node = match spec {
        ViewSpec::Base { table, alias } => {
            let base = db.get(table)?;
            let label = alias.as_deref().unwrap_or(table);
            let mut schema = Schema::new();
            for attr in base.schema.iter() {
                schema.push(attr.clone());
            }
            schema.push(Attribute::new(rid_name(label)));
            let n = base.nrows();
            let mut columns: Vec<Column> =
                (0..base.ncols()).map(|c| base.column(c).clone()).collect();
            columns.push(Column {
                codes: (0..n as u32).collect(),
                dict: std::sync::Arc::new((0..n as i64).map(Value::Int).collect()),
                null_code: None,
            });
            let rid_col = base.ncols();
            Node {
                op: NodeOp::Base {
                    table: table.clone(),
                },
                rel: Relation::from_columns(format!("aug({table})"), schema, columns, n),
                rid_cols: [(table.clone(), rid_col)].into_iter().collect(),
            }
        }
        ViewSpec::Select { input, predicate } => {
            let child = build_node(db, input, nodes)?;
            let child_rel = &nodes[child].rel;
            let rows = select_rows(child_rel, predicate).ok()?;
            let rel = child_rel.gather(&rows, "aug(σ)");
            Node {
                op: NodeOp::Select {
                    child,
                    predicate: predicate.clone(),
                },
                rel,
                rid_cols: nodes[child].rid_cols.clone(),
            }
        }
        ViewSpec::Project { input, attrs } => {
            let child = build_node(db, input, nodes)?;
            let child_rel = &nodes[child].rel;
            let mut keep: Vec<AttrId> = Vec::new();
            for name in attrs {
                keep.push(resolve(&child_rel.schema, name).ok()?);
            }
            let mut rid_cols = HashMap::new();
            for (table, &c) in &nodes[child].rid_cols {
                rid_cols.insert(table.clone(), keep.len());
                keep.push(c);
            }
            let rel = child_rel.project(&keep, "aug(π)");
            Node {
                op: NodeOp::Project { child, keep },
                rel,
                rid_cols,
            }
        }
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } => {
            debug_assert_eq!(*op, JoinOp::Inner, "fast path rejects non-inner joins");
            let l = build_node(db, left, nodes)?;
            let r = build_node(db, right, nodes)?;
            let (l_rel, r_rel) = (&nodes[l].rel, &nodes[r].rel);
            let on_ids = resolve_join_conditions(&l_rel.schema, &r_rel.schema, on).ok()?;
            let rel = join_relations(l_rel, r_rel, JoinOp::Inner, &on_ids, None, None, "aug(⋈)");
            let nl = l_rel.ncols();
            let mut rid_cols = nodes[l].rid_cols.clone();
            for (table, &c) in &nodes[r].rid_cols {
                rid_cols.insert(table.clone(), c + nl);
            }
            Node {
                op: NodeOp::Join {
                    left: l,
                    right: r,
                    on: on_ids,
                },
                rel,
                rid_cols,
            }
        }
    };
    nodes.push(node);
    Some(nodes.len() - 1)
}

// ---------------------------------------------------------------------------
// View backends: one trait, two engines.
// ---------------------------------------------------------------------------

/// Which view backend the cover-only fast path runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewMode {
    /// Materialize the rid-augmented view tree and maintain it in place
    /// ([`ViewState`]): memory, vacuum, and snapshot cost scale with
    /// |view|, but every validation is a local partition scan.
    #[default]
    Materialized,
    /// Store only per-table base chains plus persistent join indexes and
    /// answer view-level validation through the join-probe kernel
    /// ([`VirtualView`]): zero resident view rows, validation resolves
    /// probe codes through the join indexes instead.
    JoinIndex,
}

/// What the maintenance engine needs from a view implementation — the
/// seam that lets the engine/durability/service stack stop hard-coding
/// "the view is a relation".
pub trait ViewBackend: Send {
    /// Which backend this is (threads into persistence and reports).
    fn mode(&self) -> ViewMode;
    /// Propagate one base-table batch and maintain the cover; `None`
    /// when the table is not part of the view.
    fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats>;
    /// The maintained minimal cover over the visible view columns.
    fn dense_cover(&self) -> FdSet;
    /// Schema of the visible columns (the real view's schema).
    fn dense_schema(&self) -> Schema;
    /// Current number of live view rows (computed, for a virtual view).
    fn view_rows(&self) -> usize;
    /// Materialized view rows held resident in memory — what a vacuum or
    /// snapshot must carry. Zero for a virtual view.
    fn resident_view_rows(&self) -> usize;
    /// Is `table` one of the view's base tables?
    fn involves(&self, table: &str) -> bool;
    /// Memory accounting over the backend's resident relations.
    fn tombstone_stats(&self) -> TombstoneStats;
    /// Compact tombstoned resident state.
    fn vacuum(&mut self) -> VacuumStats;
    /// Soak/debug hook: panic unless the maintained cover matches a
    /// from-scratch mine. O(full mine); tests only.
    fn self_check(&self);
}

/// The materialized backend is the original [`ViewState`].
pub type MaterializedView = ViewState;

impl ViewBackend for ViewState {
    fn mode(&self) -> ViewMode {
        ViewMode::Materialized
    }
    fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats> {
        ViewState::apply_table(self, table, batch)
    }
    fn dense_cover(&self) -> FdSet {
        ViewState::dense_cover(self)
    }
    fn dense_schema(&self) -> Schema {
        ViewState::dense_schema(self)
    }
    fn view_rows(&self) -> usize {
        ViewState::view_rows(self)
    }
    fn resident_view_rows(&self) -> usize {
        ViewState::view_rows(self)
    }
    fn involves(&self, table: &str) -> bool {
        ViewState::involves(self, table)
    }
    fn tombstone_stats(&self) -> TombstoneStats {
        ViewState::tombstone_stats(self)
    }
    fn vacuum(&mut self) -> VacuumStats {
        ViewState::vacuum(self)
    }
    fn self_check(&self) {
        ViewState::self_check(self)
    }
}

// ---------------------------------------------------------------------------
// VirtualView: materialization-free backend.
// ---------------------------------------------------------------------------

/// One join constraint of the (tree-shaped) join graph, resolved to base
/// chains: `keys_a` columns of table `a`'s chain top equi-join `keys_b`
/// of table `b`'s, with a persistent [`JoinIndex`] per side.
struct JoinEdge {
    a: usize,
    keys_a: Vec<AttrId>,
    index_a: JoinIndex,
    b: usize,
    keys_b: Vec<AttrId>,
    index_b: JoinIndex,
}

/// Materialization-free view backend: per-base-table chains (the base
/// relation with its single-table selects/projects applied, rid columns
/// threaded through for delete translation) plus persistent join indexes
/// over the resolved join keys — **no view rows are ever resident**.
///
/// View-level FD validation composes the counting kernel with the join
/// indexes: for `X → a`, walk CSR classes of `π_{X∩anchor}` over the
/// base chain owning `a` (the *anchor*), expand each member row through
/// the Steiner tree of join edges connecting the tables of `X ∪ {a}`,
/// and feed the `(outside-anchor codes, rhs code)` pairs to
/// [`JoinProbe`], which early-exits with a violating pair exactly like
/// `refines_with`. Soundness rests on Yannakakis' full-reduction
/// property: per-table *survival* bitmaps (semijoin fixpoint, recomputed
/// per round) guarantee every consistent partial match over a connected
/// subtree extends to a full view row, so enumerating only the Steiner
/// tree is both sound and complete.
///
/// The cover itself is maintained as a plain [`FdSet`]: inserts
/// revalidate held FDs (deletes cannot break an inner-join view FD) and
/// re-extend broken seeds upward; deletes re-run the level-wise miner
/// with the surviving cover as its pruning set — the same state machine
/// as [`CoverState::maintain`], with the join probe as its oracle.
///
/// Supported specs: the materialized subset, further restricted to
/// non-empty join conditions whose per-side keys resolve into a single
/// base chain, and selects pushed below every join. Unsupported specs
/// fall back to the materialized backend.
pub struct VirtualView {
    /// Chain nodes of every table (single-table subtrees, flattened).
    nodes: Vec<Node>,
    /// Chain top node per table.
    tops: Vec<usize>,
    /// Base table name per chain.
    table_names: Vec<String>,
    /// Tree-shaped join graph over the chains.
    edges: Vec<JoinEdge>,
    /// Table → incident edge ids.
    adj: Vec<Vec<usize>>,
    /// Visible view column → (table, column id in that chain's top).
    col_map: Vec<(usize, AttrId)>,
    /// The real view's schema (visible columns).
    schema: Schema,
    /// Maintained minimal cover, dense over the visible columns.
    cover: FdSet,
    base_rids: HashMap<String, RidState>,
    dict_indexes: Vec<DictIndexes>,
    delete_policy: DeletePolicy,
    /// Per-table survival bitmap: row is live *and* participates in at
    /// least one view row (the Yannakakis full reduction).
    survive: Vec<Vec<bool>>,
}

/// Can the virtual backend maintain this spec? The materialized subset
/// ([`supports`]), further requiring every select below the joins and
/// every join an equi-join whose sides resolve within one base chain
/// (checked structurally here, per-side at build time).
pub fn supports_virtual(spec: &ViewSpec) -> bool {
    fn walk(spec: &ViewSpec) -> bool {
        if !spec_has_join(spec) {
            return true; // single-table subtree: becomes one chain
        }
        match spec {
            ViewSpec::Join {
                left,
                right,
                op,
                on,
            } => *op == JoinOp::Inner && !on.is_empty() && walk(left) && walk(right),
            ViewSpec::Project { input, .. } => walk(input),
            // A select above a join filters on multi-table state the
            // chains cannot represent.
            _ => false,
        }
    }
    supports(spec) && walk(spec)
}

fn spec_has_join(spec: &ViewSpec) -> bool {
    match spec {
        ViewSpec::Base { .. } => false,
        ViewSpec::Select { input, .. } | ViewSpec::Project { input, .. } => spec_has_join(input),
        ViewSpec::Join { .. } => true,
    }
}

fn single_base_table(spec: &ViewSpec) -> Option<&str> {
    match spec {
        ViewSpec::Base { table, .. } => Some(table),
        ViewSpec::Select { input, .. } | ViewSpec::Project { input, .. } => {
            single_base_table(input)
        }
        ViewSpec::Join { .. } => None,
    }
}

/// Recursively decompose `spec` into chains + join edges, computing each
/// output column's (table, chain column) provenance and the schema the
/// materialized path would produce at this point of the tree.
fn build_virtual(
    db: &Database,
    spec: &ViewSpec,
    nodes: &mut Vec<Node>,
    tables: &mut Vec<(String, usize)>,
    raw_edges: &mut Vec<(usize, Vec<AttrId>, usize, Vec<AttrId>)>,
) -> Option<(Vec<(usize, AttrId)>, Schema)> {
    if !spec_has_join(spec) {
        let top = build_node(db, spec, nodes)?;
        let name = single_base_table(spec)?.to_string();
        let t = tables.len();
        tables.push((name, top));
        let rel = &nodes[top].rel;
        let cols = (0..rel.ncols()).map(|c| (t, c)).collect();
        return Some((cols, rel.schema.clone()));
    }
    match spec {
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } => {
            if *op != JoinOp::Inner {
                return None;
            }
            let (lcols, ls) = build_virtual(db, left, nodes, tables, raw_edges)?;
            let (rcols, rs) = build_virtual(db, right, nodes, tables, raw_edges)?;
            let on_ids = resolve_join_conditions(&ls, &rs, on).ok()?;
            let (mut ta, mut tb) = (None, None);
            let mut keys_a: Vec<AttrId> = Vec::new();
            let mut keys_b: Vec<AttrId> = Vec::new();
            for &(l, r) in &on_ids {
                let (tl, cl) = lcols[l];
                let (tr, cr) = rcols[r];
                if *ta.get_or_insert(tl) != tl || *tb.get_or_insert(tr) != tr {
                    return None; // composite key spans two base chains
                }
                keys_a.push(cl);
                keys_b.push(cr);
            }
            raw_edges.push((ta?, keys_a, tb?, keys_b));
            let mut cols = lcols;
            cols.extend(rcols);
            Some((cols, joined_schema(&ls, &rs, JoinOp::Inner)))
        }
        ViewSpec::Project { input, attrs } => {
            let (icols, ischema) = build_virtual(db, input, nodes, tables, raw_edges)?;
            let mut cols = Vec::new();
            let mut schema = Schema::new();
            for name in attrs {
                let id = resolve(&ischema, name).ok()?;
                cols.push(icols[id]);
                schema.push(ischema.attr(id).clone());
            }
            Some((cols, schema))
        }
        _ => None,
    }
}

/// One Steiner-plan step: expand from an assigned `parent` table's row to
/// its join partners in `child` through `edge`.
struct PlanEdge {
    edge: usize,
    parent: usize,
    child: usize,
}

/// Expands one anchor row into its `(probe key, rhs code)` view-row
/// projections by walking the Steiner plan through the join indexes.
struct Expander<'a> {
    view: &'a VirtualView,
    plan: &'a [PlanEdge],
    outer: &'a [(usize, AttrId)],
    anchor: usize,
    rhs_col: AttrId,
}

impl Expander<'_> {
    fn expand(&self, row: u32, sink: &mut ProbeSink) {
        if !self.view.survive[self.anchor][row as usize] {
            return; // dangling or dead: joins into no view row
        }
        let mut assign = vec![u32::MAX; self.view.tops.len()];
        assign[self.anchor] = row;
        self.go(0, &mut assign, sink);
    }

    fn go(&self, idx: usize, assign: &mut Vec<u32>, sink: &mut ProbeSink) {
        if idx == self.plan.len() {
            let key: Vec<u32> = self
                .outer
                .iter()
                .map(|&(t, c)| self.view.code_at(t, assign[t], c))
                .collect();
            let code = self
                .view
                .code_at(self.anchor, assign[self.anchor], self.rhs_col);
            sink.emit(key, code);
            return;
        }
        let pe = &self.plan[idx];
        let e = &self.view.edges[pe.edge];
        let (pkeys, index_child) = if e.a == pe.parent {
            (&e.keys_a, &e.index_b)
        } else {
            (&e.keys_b, &e.index_a)
        };
        sink.hops(1);
        if let Some(key) = key_of(
            self.view.top_rel(pe.parent),
            assign[pe.parent] as usize,
            pkeys,
        ) {
            for &p in index_child.get(&key) {
                if !self.view.survive[pe.child][p as usize] {
                    continue;
                }
                assign[pe.child] = p;
                self.go(idx + 1, assign, sink);
            }
        }
    }
}

/// [`Validity`] oracle over a [`VirtualView`]: every `holds` question
/// runs one [`JoinProbe`] check. Anchor partitions (with their stripped
/// singleton rows) are cached per `(table, lhs∩anchor)` for the duration
/// of one maintenance round.
struct VirtualValidity<'a> {
    view: &'a VirtualView,
    probe: JoinProbe,
    plis: HashMap<(usize, AttrSet), (Pli, Vec<u32>)>,
}

impl<'a> VirtualValidity<'a> {
    fn new(view: &'a VirtualView) -> Self {
        VirtualValidity {
            view,
            probe: JoinProbe::new(),
            plis: HashMap::new(),
        }
    }
}

impl Validity for VirtualValidity<'_> {
    fn holds(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        let view = self.view;
        let (anchor, rhs_col) = view.col_map[rhs];
        let mut anchor_set = AttrSet::EMPTY;
        let mut outer: Vec<(usize, AttrId)> = Vec::new();
        let mut needed: HashSet<usize> = HashSet::new();
        for a in lhs.iter() {
            let (t, c) = view.col_map[a];
            if t == anchor {
                anchor_set = anchor_set.with(c);
            } else {
                outer.push((t, c));
                needed.insert(t);
            }
        }
        let plan = view.steiner_plan(anchor, &needed);
        let expander = Expander {
            view,
            plan: &plan,
            outer: &outer,
            anchor,
            rhs_col,
        };
        if anchor_set.is_empty() {
            // Every anchor row agrees on X∩anchor = ∅: one big class.
            let top = view.top_rel(anchor);
            let rows: Vec<u32> = (0..top.nrows() as u32)
                .filter(|&r| top.is_live(r as usize))
                .collect();
            self.probe
                .check_class(&rows, |row, sink| expander.expand(row, sink))
                .holds()
        } else {
            let (pli, singles) = self.plis.entry((anchor, anchor_set)).or_insert_with(|| {
                let top = view.top_rel(anchor);
                let pli = Pli::for_set(top, anchor_set);
                let mut in_class = vec![false; top.nrows()];
                for class in pli.classes() {
                    for &r in class {
                        in_class[r as usize] = true;
                    }
                }
                let singles = (0..top.nrows() as u32)
                    .filter(|&r| top.is_live(r as usize) && !in_class[r as usize])
                    .collect();
                (pli, singles)
            });
            self.probe
                .check(pli, singles, |row, sink| expander.expand(row, sink))
                .holds()
        }
    }
}

impl VirtualView {
    /// Build the chains + join indexes and mine the cover through the
    /// join probe. `None` when the spec is outside the virtual subset.
    pub fn bootstrap(
        db: &Database,
        spec: &ViewSpec,
        _algorithm: Algorithm,
        delete_policy: DeletePolicy,
    ) -> Option<VirtualView> {
        Self::build(db, spec, delete_policy, None)
    }

    /// Rebuild from a persisted cover without re-mining (the snapshot
    /// layer stores the dense cover; WAL replay pins it current).
    pub fn restore(
        db: &Database,
        spec: &ViewSpec,
        delete_policy: DeletePolicy,
        cover: FdSet,
    ) -> Option<VirtualView> {
        Self::build(db, spec, delete_policy, Some(cover))
    }

    fn build(
        db: &Database,
        spec: &ViewSpec,
        delete_policy: DeletePolicy,
        cover: Option<FdSet>,
    ) -> Option<VirtualView> {
        if !supports_virtual(spec) {
            return None;
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut tables: Vec<(String, usize)> = Vec::new();
        let mut raw_edges: Vec<(usize, Vec<AttrId>, usize, Vec<AttrId>)> = Vec::new();
        let (cols, schema) = build_virtual(db, spec, &mut nodes, &mut tables, &mut raw_edges)?;
        let mut col_map = Vec::new();
        let mut visible_schema = Schema::new();
        for (i, &col) in cols.iter().enumerate().take(schema.len()) {
            if !schema.name(i).starts_with("__rid_") {
                col_map.push(col);
                visible_schema.push(schema.attr(i).clone());
            }
        }
        let edges: Vec<JoinEdge> = raw_edges
            .into_iter()
            .map(|(a, keys_a, b, keys_b)| JoinEdge {
                index_a: JoinIndex::build(&nodes[tables[a].1].rel, &keys_a),
                index_b: JoinIndex::build(&nodes[tables[b].1].rel, &keys_b),
                a,
                keys_a,
                b,
                keys_b,
            })
            .collect();
        let mut adj = vec![Vec::new(); tables.len()];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a].push(i);
            adj[e.b].push(i);
        }
        let base_rids = nodes
            .iter()
            .filter_map(|n| match &n.op {
                NodeOp::Base { table } => Some((
                    table.clone(),
                    RidState {
                        rids: (0..n.rel.nrows() as i64).collect(),
                        next: n.rel.nrows() as i64,
                    },
                )),
                _ => None,
            })
            .collect();
        let dict_indexes = nodes.iter().map(|n| DictIndexes::build(&n.rel)).collect();
        let mut view = VirtualView {
            nodes,
            tops: tables.iter().map(|&(_, top)| top).collect(),
            table_names: tables.into_iter().map(|(name, _)| name).collect(),
            edges,
            adj,
            col_map,
            schema: visible_schema,
            cover: FdSet::new(),
            base_rids,
            dict_indexes,
            delete_policy,
            survive: Vec::new(),
        };
        view.recompute_survival();
        view.cover = match cover {
            Some(c) => c,
            None => view.mine_cover(),
        };
        Some(view)
    }

    fn top_rel(&self, t: usize) -> &Relation {
        &self.nodes[self.tops[t]].rel
    }

    fn code_at(&self, t: usize, row: u32, col: AttrId) -> u32 {
        self.top_rel(t).column(col).codes[row as usize]
    }

    /// The attribute universe of the (dense) visible columns.
    fn visible_attrs(&self) -> AttrSet {
        (0..self.col_map.len()).collect()
    }

    /// Pruned pre-order edge walk from `anchor` covering `needed` tables.
    fn steiner_plan(&self, anchor: usize, needed: &HashSet<usize>) -> Vec<PlanEdge> {
        let mut plan = Vec::new();
        self.plan_dfs(anchor, usize::MAX, needed, &mut plan);
        plan
    }

    fn plan_dfs(
        &self,
        t: usize,
        from_edge: usize,
        needed: &HashSet<usize>,
        plan: &mut Vec<PlanEdge>,
    ) -> bool {
        let mut any = needed.contains(&t);
        for &ei in &self.adj[t] {
            if ei == from_edge {
                continue;
            }
            let e = &self.edges[ei];
            let child = if e.a == t { e.b } else { e.a };
            let mark = plan.len();
            plan.push(PlanEdge {
                edge: ei,
                parent: t,
                child,
            });
            if self.plan_dfs(child, ei, needed, plan) {
                any = true;
            } else {
                plan.truncate(mark); // subtree holds nothing needed
            }
        }
        any
    }

    /// Recompute the per-table survival bitmaps: the Yannakakis full
    /// reduction as a semijoin fixpoint over the join tree (converges in
    /// a handful of passes — the tree diameter bounds it).
    fn recompute_survival(&mut self) {
        let mut survive: Vec<Vec<bool>> = (0..self.tops.len())
            .map(|t| {
                let rel = self.top_rel(t);
                (0..rel.nrows()).map(|r| rel.is_live(r)).collect()
            })
            .collect();
        if !self.edges.is_empty() {
            loop {
                let mut changed = false;
                for e in &self.edges {
                    for (src, src_keys, dst, dst_keys) in [
                        (e.a, &e.keys_a, e.b, &e.keys_b),
                        (e.b, &e.keys_b, e.a, &e.keys_a),
                    ] {
                        let rel_src = self.top_rel(src);
                        let keys: HashSet<Vec<Value>> = survive[src]
                            .iter()
                            .enumerate()
                            .filter(|&(_, &s)| s)
                            .filter_map(|(r, _)| key_of(rel_src, r, src_keys))
                            .collect();
                        let rel_dst = self.top_rel(dst);
                        for (r, s) in survive[dst].iter_mut().enumerate() {
                            if *s
                                && !key_of(rel_dst, r, dst_keys)
                                    .map(|k| keys.contains(&k))
                                    .unwrap_or(false)
                            {
                                *s = false;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        self.survive = survive;
    }

    /// Mine the full cover from scratch through the join probe.
    fn mine_cover(&self) -> FdSet {
        let attrs = self.visible_attrs();
        let known = FdSet::new();
        let mut validity = VirtualValidity::new(self);
        let constants = self.constant_cols(&mut validity, &known);
        mine_new_fds_via(&mut validity, constants, attrs, &known, None)
    }

    /// Visible columns constant over the current view rows (`∅ → a`).
    /// FDs already in `known` are trusted (the callers only pass sets
    /// whose members were validated against the current version).
    fn constant_cols(&self, validity: &mut VirtualValidity, known: &FdSet) -> AttrSet {
        self.visible_attrs()
            .iter()
            .filter(|&a| {
                known.has_subset_lhs(AttrSet::EMPTY, a) || validity.holds(AttrSet::EMPTY, a)
            })
            .collect()
    }

    /// Bring the cover across one maintenance round — the
    /// [`CoverState::maintain`] state machine with the join probe as its
    /// oracle and no partition/witness state to carry:
    /// * inserts revalidate every held FD (view-row additions are the
    ///   only thing that can break one) and re-extend broken seeds;
    /// * deletes re-run the level-wise miner with the surviving cover as
    ///   its pruning `known` set.
    fn remine_cover(&self, had_inserts: bool, had_deletes: bool) -> (FdSet, CoverDeltaStats) {
        let mut stats = CoverDeltaStats {
            held: self.cover.len(),
            ..CoverDeltaStats::default()
        };
        let attrs = self.visible_attrs();
        let mut validity = VirtualValidity::new(self);
        let mut survivors = FdSet::new();
        let mut broken: Vec<Fd> = Vec::new();
        if !had_inserts {
            survivors = self.cover.clone();
        } else {
            for fd in self.cover.to_sorted_vec() {
                if validity.holds(fd.lhs, fd.rhs) {
                    survivors.insert_minimal(fd);
                } else {
                    broken.push(fd);
                }
            }
        }
        stats.broken = broken.len();
        let mut fds = survivors.clone();
        if !broken.is_empty() {
            let recovered = extend_seeds(&mut validity, attrs, &broken, &survivors);
            stats.recovered = recovered.len();
            fds.extend_minimal(&recovered);
        }
        if had_deletes {
            let constants = self.constant_cols(&mut validity, &fds);
            let surfaced = mine_new_fds_via(&mut validity, constants, attrs, &fds, None);
            stats.surfaced = surfaced.len();
            fds.extend_minimal(&surfaced);
        }
        (fds, stats)
    }

    /// Propagate one base-table batch through that table's chain, patch
    /// the incident join indexes, refresh survival, and maintain the
    /// cover. Returns `None` when the table is not part of the view.
    pub fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats> {
        self.base_rids.get(table)?;

        // Stable-id bookkeeping — identical to the materialized path.
        let rid_state = self.base_rids.get_mut(table).expect("checked above");
        let mut dead = vec![false; rid_state.rids.len()];
        for &d in &batch.deletes {
            dead[d as usize] = true;
        }
        let deleted_rids: HashSet<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| is_dead.then_some(rid))
            .collect();
        let fresh_rids: Vec<i64> = (0..batch.inserts.len() as i64)
            .map(|i| rid_state.next + i)
            .collect();
        rid_state.next += batch.inserts.len() as i64;
        let mut kept: Vec<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| (!is_dead).then_some(rid))
            .collect();
        kept.extend(&fresh_rids);
        rid_state.rids = kept;

        // Phase 1 — Δ relations along the changed table's chain (chains
        // hold no joins, so this never probes an index).
        let deltas: Vec<Option<Relation>> = {
            let mut deltas: Vec<Option<Relation>> = Vec::with_capacity(self.nodes.len());
            for (i, node) in self.nodes.iter().enumerate() {
                let d = match &node.op {
                    NodeOp::Base { table: t } => {
                        if t == table && !batch.inserts.is_empty() {
                            Some(augmented_rows(
                                &node.rel.schema,
                                &batch.inserts,
                                &fresh_rids,
                            ))
                        } else {
                            None
                        }
                    }
                    NodeOp::Select { child, predicate } => deltas[*child].as_ref().map(|d| {
                        let rows =
                            select_rows(d, predicate).expect("predicate resolved at bootstrap");
                        d.gather(&rows, format!("Δ{i}"))
                    }),
                    NodeOp::Project { child, keep } => deltas[*child]
                        .as_ref()
                        .map(|d| d.project(keep, format!("Δ{i}"))),
                    NodeOp::Join { .. } => unreachable!("chains contain no joins"),
                };
                deltas.push(d);
            }
            deltas
        };

        // Phase 2 — apply rid-matched deletes + Δ inserts per chain node.
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let rid_col = match node.rid_cols.get(table) {
                Some(&c) => c,
                None => continue,
            };
            let mut node_batch = DeltaBatch::new();
            if !deleted_rids.is_empty() {
                let rid_column = node.rel.column(rid_col);
                let dead_codes: HashSet<u32> = rid_column
                    .dict
                    .iter()
                    .enumerate()
                    .filter_map(|(code, v)| {
                        v.as_i64()
                            .filter(|rid| deleted_rids.contains(rid))
                            .map(|_| code as u32)
                    })
                    .collect();
                if !dead_codes.is_empty() {
                    for (row, code) in rid_column.codes.iter().enumerate() {
                        if dead_codes.contains(code) {
                            node_batch.delete(row as u32);
                        }
                    }
                }
            }
            if let Some(d) = &deltas[i] {
                for row in 0..d.nrows() {
                    node_batch.insert(d.row(row));
                }
            }
            let name = node.rel.name.clone();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let (new_rel, applied) = match self.delete_policy {
                DeletePolicy::Compact => {
                    old.apply_delta_owned(&node_batch, name, &mut self.dict_indexes[i])
                }
                DeletePolicy::Tombstone => old.apply_delta_tombstoned(
                    &node_batch.deletes,
                    &node_batch.inserts,
                    name,
                    &mut self.dict_indexes[i],
                ),
            };
            node.rel = new_rel;
            applied_by_node[i] = Some(applied);
        }

        // Phase 2.5 — carry the incident join indexes across the chain
        // top's version change (delta-sized hashing, integer remaps).
        let t = self
            .table_names
            .iter()
            .position(|n| n == table)
            .expect("base_rids and table_names agree");
        let top = self.tops[t];
        if let Some(applied) = &applied_by_node[top] {
            let top_rel = &self.nodes[top].rel;
            for &ei in &self.adj[t] {
                let e = &mut self.edges[ei];
                if e.a == t {
                    e.index_a.patch(top_rel, &e.keys_a, applied);
                } else {
                    e.index_b.patch(top_rel, &e.keys_b, applied);
                }
            }
        }

        // Phase 3 — refresh survival, then bring the cover across.
        self.recompute_survival();
        let (cover, stats) =
            self.remine_cover(!batch.inserts.is_empty(), !batch.deletes.is_empty());
        self.cover = cover;
        Some(stats)
    }

    /// Memory accounting over the chain relations — there is no resident
    /// view state to account for.
    pub fn tombstone_stats(&self) -> TombstoneStats {
        let mut stats = TombstoneStats::default();
        for node in &self.nodes {
            stats.merge(TombstoneStats::of(&node.rel));
        }
        stats
    }

    /// Vacuum tombstoned chain nodes and carry the join indexes across
    /// the row moves. The cover is row-id-free, so nothing rebases.
    pub fn vacuum(&mut self) -> VacuumStats {
        let t0 = std::time::Instant::now();
        let mut stats = VacuumStats::default();
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.rel.has_tombstones() {
                continue;
            }
            stats.relations += 1;
            stats.rows_dropped += node.rel.tombstone_count();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let dicts_before = dict_entries(&old);
            let (v, applied) = old.vacuum();
            stats.dict_entries_dropped += dicts_before - dict_entries(&v);
            self.dict_indexes[i] = DictIndexes::build(&v);
            node.rel = v;
            applied_by_node[i] = Some(applied);
        }
        for e in self.edges.iter_mut() {
            if let Some(applied) = &applied_by_node[self.tops[e.a]] {
                e.index_a
                    .patch(&self.nodes[self.tops[e.a]].rel, &e.keys_a, applied);
            }
            if let Some(applied) = &applied_by_node[self.tops[e.b]] {
                e.index_b
                    .patch(&self.nodes[self.tops[e.b]].rel, &e.keys_b, applied);
            }
        }
        self.recompute_survival();
        stats.duration = t0.elapsed();
        stats
    }

    /// Count the view rows without materializing them: bottom-up per-row
    /// expansion counts over the full join tree.
    fn count_rows(&self) -> usize {
        if self.tops.is_empty() {
            return 0;
        }
        let needed: HashSet<usize> = (0..self.tops.len()).collect();
        let plan = self.steiner_plan(0, &needed);
        let mut cnt: Vec<Vec<u64>> = self
            .survive
            .iter()
            .map(|bits| bits.iter().map(|&s| u64::from(s)).collect())
            .collect();
        // Pre-order plan ⇒ reverse order folds children before parents.
        for pe in plan.iter().rev() {
            let e = &self.edges[pe.edge];
            let (pkeys, index_child) = if e.a == pe.parent {
                (&e.keys_a, &e.index_b)
            } else {
                (&e.keys_b, &e.index_a)
            };
            let prel = self.top_rel(pe.parent);
            let child_cnt = std::mem::take(&mut cnt[pe.child]);
            for (r, c) in cnt[pe.parent].iter_mut().enumerate() {
                if *c == 0 {
                    continue;
                }
                let expansions: u64 = match key_of(prel, r, pkeys) {
                    Some(key) => index_child
                        .get(&key)
                        .iter()
                        .map(|&p| child_cnt[p as usize])
                        .sum(),
                    None => 0,
                };
                *c *= expansions;
            }
            cnt[pe.child] = child_cnt;
        }
        cnt[0].iter().sum::<u64>() as usize
    }

    /// Materialize the visible view rows by full-tree enumeration —
    /// O(|view|), tests and `self_check` only.
    fn materialize(&self) -> Relation {
        let mut builder = RelationBuilder::new("virtual", self.schema.clone());
        if !self.tops.is_empty() {
            let needed: HashSet<usize> = (0..self.tops.len()).collect();
            let plan = self.steiner_plan(0, &needed);
            let mut assign = vec![u32::MAX; self.tops.len()];
            for r in 0..self.top_rel(0).nrows() as u32 {
                if !self.survive[0][r as usize] {
                    continue;
                }
                assign[0] = r;
                self.enumerate(&plan, 0, &mut assign, &mut builder);
            }
        }
        builder.finish()
    }

    fn enumerate(
        &self,
        plan: &[PlanEdge],
        idx: usize,
        assign: &mut Vec<u32>,
        builder: &mut RelationBuilder,
    ) {
        if idx == plan.len() {
            let row: Vec<Value> = self
                .col_map
                .iter()
                .map(|&(t, c)| self.top_rel(t).value(assign[t] as usize, c).clone())
                .collect();
            builder.push_row(row);
            return;
        }
        let pe = &plan[idx];
        let e = &self.edges[pe.edge];
        let (pkeys, index_child) = if e.a == pe.parent {
            (&e.keys_a, &e.index_b)
        } else {
            (&e.keys_b, &e.index_a)
        };
        if let Some(key) = key_of(self.top_rel(pe.parent), assign[pe.parent] as usize, pkeys) {
            for &p in index_child.get(&key) {
                if !self.survive[pe.child][p as usize] {
                    continue;
                }
                assign[pe.child] = p;
                self.enumerate(plan, idx + 1, assign, builder);
            }
        }
    }

    /// Soak/debug hook: the maintained cover must equal a from-scratch
    /// mine of the materialized view rows. O(full mine); tests only.
    pub fn self_check(&self) {
        let rel = self.materialize();
        let fresh = infine_discovery::mine_fds(&rel, rel.attr_set());
        assert!(
            infine_discovery::same_fds(&self.cover, &fresh),
            "virtual cover diverged from fresh mine:\n{:?}\nvs\n{:?}",
            self.cover.to_sorted_vec(),
            fresh.to_sorted_vec()
        );
    }
}

impl ViewBackend for VirtualView {
    fn mode(&self) -> ViewMode {
        ViewMode::JoinIndex
    }
    fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats> {
        VirtualView::apply_table(self, table, batch)
    }
    fn dense_cover(&self) -> FdSet {
        self.cover.clone()
    }
    fn dense_schema(&self) -> Schema {
        self.schema.clone()
    }
    fn view_rows(&self) -> usize {
        self.count_rows()
    }
    fn resident_view_rows(&self) -> usize {
        0
    }
    fn involves(&self, table: &str) -> bool {
        self.base_rids.contains_key(table)
    }
    fn tombstone_stats(&self) -> TombstoneStats {
        VirtualView::tombstone_stats(self)
    }
    fn vacuum(&mut self) -> VacuumStats {
        VirtualView::vacuum(self)
    }
    fn self_check(&self) {
        VirtualView::self_check(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_algebra::execute;
    use infine_discovery::{same_fds, tane};
    use infine_relation::relation_from_rows;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(4), Value::str("z")],
            ],
        ));
        db
    }

    fn spec() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    /// Oracle: the canonical cover of the real (un-augmented) view.
    fn oracle_cover(db: &Database, spec: &ViewSpec) -> FdSet {
        let view = execute(spec, db).unwrap();
        tane(&view, view.attr_set())
    }

    fn assert_view_current(view: &ViewState, db: &Database, spec: &ViewSpec) {
        let real = execute(spec, db).unwrap();
        assert_eq!(view.view_rows(), real.nrows(), "row count diverged");
        // visible columns match the real view by name and content
        let schema = view.dense_schema();
        for i in 0..schema.len() {
            assert_eq!(schema.name(i), real.schema.name(i), "column order diverged");
        }
        assert!(
            same_fds(&view.dense_cover(), &oracle_cover(db, spec)),
            "cover diverged from the canonical view cover"
        );
    }

    /// Apply a batch to both the view state and the plain database.
    fn apply_both(view: &mut ViewState, db: &mut Database, table: &str, batch: &DeltaBatch) {
        let stats = view.apply_table(table, batch);
        assert!(stats.is_some());
        let (new_table, _) = db.expect(table).apply_delta(batch, table.to_string());
        db.insert(new_table);
    }

    #[test]
    fn supports_rejects_outer_joins_and_repeats() {
        assert!(supports(&spec()));
        assert!(!supports(&ViewSpec::base("p").join(
            ViewSpec::base("q"),
            JoinOp::LeftOuter,
            &[("pid", "pid")],
        )));
        assert!(!supports(&ViewSpec::base_as("p", "x").join(
            ViewSpec::base_as("p", "y"),
            JoinOp::Inner,
            &[("x.pid", "y.pid")],
        )));
    }

    #[test]
    fn bootstrap_matches_real_view() {
        let db = db();
        let view = ViewState::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
            .unwrap();
        assert_view_current(&view, &db, &spec());
    }

    #[test]
    fn inserts_deletes_and_mixed_rounds_stay_current() {
        let mut db = db();
        let spec = spec();
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();

        // insert into p that joins twice
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("b"), Value::Int(5)]);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        // delete from q (drops the joined rows)
        let mut b = DeltaBatch::new();
        b.delete(0).delete(3);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);

        // mixed on p
        let mut b = DeltaBatch::new();
        b.delete(1)
            .insert(vec![Value::Int(3), Value::str("a"), Value::Int(0)])
            .insert(vec![Value::Int(9), Value::str("c"), Value::Int(1)]); // dangles
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        // insert into q matching a previously dangling p row
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("w")]);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn selects_and_projects_are_maintained() {
        let mut db = db();
        let spec = ViewSpec::base("p")
            .select(Predicate::eq("flag", 0i64))
            .inner_join(ViewSpec::base("q"), &["pid"])
            .project(&["grp", "site"]);
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();
        assert_view_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(3), Value::str("c"), Value::Int(0)]) // passes σ, joins
            .insert(vec![Value::Int(1), Value::str("d"), Value::Int(7)]) // filtered by σ
            .delete(0);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("y")]).delete(2);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn delete_then_reinsert_same_key_gets_fresh_rid() {
        let mut db = db();
        let spec = spec();
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();
        // delete p row 0 (pid 1), then re-insert an identical row — the
        // fresh rid must not resurrect the dead view rows.
        let mut b = DeltaBatch::new();
        b.delete(0);
        apply_both(&mut view, &mut db, "p", &b);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn untouched_table_delta_is_none() {
        let db = db();
        let mut view =
            ViewState::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        assert!(view.apply_table("unrelated", &DeltaBatch::new()).is_none());
        assert!(view.involves("p") && !view.involves("unrelated"));
    }

    // -- VirtualView ------------------------------------------------------

    fn assert_virtual_current(view: &VirtualView, db: &Database, spec: &ViewSpec) {
        let real = execute(spec, db).unwrap();
        assert_eq!(
            ViewBackend::view_rows(view),
            real.nrows(),
            "virtual row count diverged"
        );
        assert_eq!(view.resident_view_rows(), 0, "virtual view holds rows");
        let schema = ViewBackend::dense_schema(view);
        for i in 0..schema.len() {
            assert_eq!(schema.name(i), real.schema.name(i), "column order diverged");
        }
        assert!(
            same_fds(&ViewBackend::dense_cover(view), &oracle_cover(db, spec)),
            "virtual cover diverged from the canonical view cover"
        );
        view.self_check();
    }

    fn apply_both_virtual(
        view: &mut VirtualView,
        db: &mut Database,
        table: &str,
        batch: &DeltaBatch,
    ) {
        let stats = view.apply_table(table, batch);
        assert!(stats.is_some());
        let (new_table, _) = db.expect(table).apply_delta(batch, table.to_string());
        db.insert(new_table);
    }

    #[test]
    fn supports_virtual_accepts_chain_specs_and_rejects_the_rest() {
        assert!(supports_virtual(&spec()));
        assert!(supports_virtual(
            &ViewSpec::base("p")
                .select(Predicate::eq("flag", 0i64))
                .inner_join(ViewSpec::base("q"), &["pid"])
                .project(&["grp", "site"])
        ));
        // select above a join filters multi-table state
        assert!(!supports_virtual(
            &spec().select(Predicate::eq("flag", 0i64))
        ));
        // cross join has no keys to index
        assert!(!supports_virtual(&ViewSpec::base("p").join(
            ViewSpec::base("q"),
            JoinOp::Inner,
            &[],
        )));
        // outer joins stay out (also rejected by the materialized subset)
        assert!(!supports_virtual(&ViewSpec::base("p").join(
            ViewSpec::base("q"),
            JoinOp::LeftOuter,
            &[("pid", "pid")],
        )));
    }

    #[test]
    fn virtual_bootstrap_matches_real_view() {
        let db = db();
        let view =
            VirtualView::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        assert_eq!(view.mode(), ViewMode::JoinIndex);
        assert_virtual_current(&view, &db, &spec());
    }

    #[test]
    fn virtual_mixed_rounds_stay_current() {
        let mut db = db();
        let spec = spec();
        let mut view =
            VirtualView::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();

        // insert into p that joins twice
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("b"), Value::Int(5)]);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);

        // delete from q (drops the joined rows)
        let mut b = DeltaBatch::new();
        b.delete(0).delete(3);
        apply_both_virtual(&mut view, &mut db, "q", &b);
        assert_virtual_current(&view, &db, &spec);

        // mixed on p
        let mut b = DeltaBatch::new();
        b.delete(1)
            .insert(vec![Value::Int(3), Value::str("a"), Value::Int(0)])
            .insert(vec![Value::Int(9), Value::str("c"), Value::Int(1)]); // dangles
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);

        // insert into q matching a previously dangling p row
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("w")]);
        apply_both_virtual(&mut view, &mut db, "q", &b);
        assert_virtual_current(&view, &db, &spec);
    }

    #[test]
    fn virtual_selects_and_projects_are_maintained() {
        let mut db = db();
        let spec = ViewSpec::base("p")
            .select(Predicate::eq("flag", 0i64))
            .inner_join(ViewSpec::base("q"), &["pid"])
            .project(&["grp", "site"]);
        let mut view =
            VirtualView::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        assert_virtual_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(3), Value::str("c"), Value::Int(0)]) // passes σ, joins
            .insert(vec![Value::Int(1), Value::str("d"), Value::Int(7)]) // filtered by σ
            .delete(0);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("y")]).delete(2);
        apply_both_virtual(&mut view, &mut db, "q", &b);
        assert_virtual_current(&view, &db, &spec);
    }

    #[test]
    fn virtual_delete_then_reinsert_same_key_gets_fresh_rid() {
        let mut db = db();
        let spec = spec();
        let mut view =
            VirtualView::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        let mut b = DeltaBatch::new();
        b.delete(0);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);
    }

    #[test]
    fn virtual_tombstone_policy_and_vacuum() {
        let mut db = db();
        let spec = spec();
        let mut view =
            VirtualView::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Tombstone)
                .unwrap();
        let mut b = DeltaBatch::new();
        b.delete(1)
            .insert(vec![Value::Int(2), Value::str("c"), Value::Int(1)]);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);
        let ts = ViewBackend::tombstone_stats(&view);
        assert!(
            ts.physical_rows > ts.live_rows,
            "tombstone policy left no stones"
        );

        let stats = view.vacuum();
        assert!(stats.relations > 0 && stats.rows_dropped > 0);
        let ts = ViewBackend::tombstone_stats(&view);
        assert_eq!(ts.physical_rows, ts.live_rows);
        assert_virtual_current(&view, &db, &spec);

        // churn after the vacuum keeps working against rebased indexes
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(4), Value::str("w")]).delete(0);
        apply_both_virtual(&mut view, &mut db, "q", &b);
        assert_virtual_current(&view, &db, &spec);
    }

    #[test]
    fn virtual_three_table_chain_walks_the_steiner_tree() {
        let mut db = db();
        db.insert(relation_from_rows(
            "r",
            &["site", "region"],
            &[
                &[Value::str("x"), Value::str("north")],
                &[Value::str("y"), Value::str("south")],
                &[Value::str("z"), Value::str("south")],
            ],
        ));
        let spec = ViewSpec::base("p")
            .inner_join(ViewSpec::base("q"), &["pid"])
            .inner_join(ViewSpec::base("r"), &["site"]);
        let mut view =
            VirtualView::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        assert_virtual_current(&view, &db, &spec);

        // drop a region row — every view row through site "y" disappears
        let mut b = DeltaBatch::new();
        b.delete(1)
            .insert(vec![Value::str("w"), Value::str("east")]);
        apply_both_virtual(&mut view, &mut db, "r", &b);
        assert_virtual_current(&view, &db, &spec);

        // p-side churn must revalidate across both hops
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(4), Value::str("a"), Value::Int(0)]);
        apply_both_virtual(&mut view, &mut db, "p", &b);
        assert_virtual_current(&view, &db, &spec);
    }

    #[test]
    fn virtual_restore_skips_the_mine() {
        let db = db();
        let fresh =
            VirtualView::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        let restored = VirtualView::restore(
            &db,
            &spec(),
            DeletePolicy::Compact,
            ViewBackend::dense_cover(&fresh),
        )
        .unwrap();
        assert_virtual_current(&restored, &db, &spec());
    }
}
