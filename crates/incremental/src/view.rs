//! Incrementally maintained materialized view with row-id provenance —
//! the engine's cover-only fast path.
//!
//! Every base table is augmented with a hidden `__rid_<label>` column
//! holding a stable logical row id. The view (and every intermediate
//! node of its spec tree) is materialized once with those columns
//! threaded through, after which a delta batch against one base table is
//! delta-sized work:
//!
//! * **Deletes** — a view row sourced from a deleted base row is found by
//!   scanning the node's rid column (linear, no hashing), and removed by
//!   an ordinary [`Relation::apply_delta`](infine_relation::Relation::apply_delta)
//!   compaction. Inner-join trees are monotone, so removed base rows can
//!   only ever remove view rows.
//! * **Inserts** — the new view rows are exactly `Δ ⋈ (other sides)`, so
//!   the inserted base rows are joined *only against the cached sibling
//!   relations along the path to the root* — never recomputing an
//!   unchanged subtree.
//!
//! The view's minimal FD cover rides along in a [`CoverState`] over the
//! visible (non-rid) columns: dirty-class revalidation plus targeted
//! re-mining against the patched view, with no pipeline replay and no
//! base-table mining. This is what lets maintenance beat full
//! re-discovery by an order of magnitude on small deltas.
//!
//! Supported specs: any Select/Project tree over **inner** joins where no
//! base table appears twice (outer joins repad existing rows under
//! inserts, and repeated tables need inclusion–exclusion delta joins —
//! both fall back to the engine's exact-provenance path).

use crate::cover::{CoverDeltaStats, CoverState};
use crate::engine::{dict_entries, DeletePolicy, TombstoneStats, VacuumStats};
use infine_algebra::{
    join_relations, resolve, resolve_join_conditions, select_rows, JoinOp, Predicate, ViewSpec,
};
use infine_discovery::{Algorithm, Fd, FdSet};
use infine_relation::{
    AppliedDelta, AttrId, AttrSet, Attribute, Column, Database, DeltaBatch, DictIndexes, Relation,
    RelationBuilder, Schema, Value,
};
use std::collections::{HashMap, HashSet};

/// One flattened node of the spec tree.
enum NodeOp {
    Base {
        table: String,
    },
    Select {
        child: usize,
        predicate: Predicate,
    },
    Project {
        child: usize,
        /// Resolved child column ids to keep (listed attrs + child rids).
        keep: Vec<AttrId>,
    },
    Join {
        left: usize,
        right: usize,
        /// Resolved (left id, right id) join pairs.
        on: Vec<(AttrId, AttrId)>,
    },
}

struct Node {
    op: NodeOp,
    /// Current materialized augmented relation of this node.
    rel: Relation,
    /// Base table → rid column id within `rel`.
    rid_cols: HashMap<String, AttrId>,
}

/// Persistent join-key index over one side of a join node: key values →
/// current row ids of that side's relation. Rebuilding the probe hash per
/// delta would cost a full pass over the big side every round; this index
/// is built once and carried across versions — deletions remap row ids
/// (integer work, no hashing), insertions hash only the delta rows.
#[derive(Default)]
struct JoinIndex {
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl JoinIndex {
    /// Build from a relation's join-key columns. Rows with a NULL key
    /// component are excluded (SQL join semantics: null matches nothing).
    fn build(rel: &Relation, keys: &[AttrId]) -> JoinIndex {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for row in 0..rel.nrows() {
            if let Some(key) = key_of(rel, row, keys) {
                map.entry(key).or_default().push(row as u32);
            }
        }
        JoinIndex { map }
    }

    /// Matching rows for one probe key.
    fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Carry the index across the indexed side's version change.
    fn patch(&mut self, new_rel: &Relation, keys: &[AttrId], applied: &AppliedDelta) {
        if applied.num_deleted() > 0 {
            self.map.retain(|_, rows| {
                rows.retain_mut(|r| match applied.remap[*r as usize] {
                    Some(new_id) => {
                        *r = new_id;
                        true
                    }
                    None => false,
                });
                !rows.is_empty()
            });
        }
        for row in applied.first_inserted as usize..applied.new_nrows {
            if let Some(key) = key_of(new_rel, row, keys) {
                self.map.entry(key).or_default().push(row as u32);
            }
        }
    }
}

/// Join-key values of one row; `None` when any component is NULL.
fn key_of(rel: &Relation, row: usize, keys: &[AttrId]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(keys.len());
    for &k in keys {
        if rel.is_null(row, k) {
            return None;
        }
        key.push(rel.value(row, k).clone());
    }
    Some(key)
}

/// Stable logical row ids for one base table, aligned with its current
/// row positions.
struct RidState {
    rids: Vec<i64>,
    next: i64,
}

/// The incrementally maintained augmented view plus its FD cover.
pub struct ViewState {
    nodes: Vec<Node>,
    root: usize,
    /// Visible (non-rid) column ids of the root relation, ascending.
    visible_ids: Vec<AttrId>,
    cover: CoverState,
    base_rids: HashMap<String, RidState>,
    /// Per-join-node persistent key indexes: `(left side, right side)`,
    /// keyed by node id. Kept outside [`Node`] so index patching can read
    /// child relations while mutating the index.
    join_indexes: HashMap<usize, (JoinIndex, JoinIndex)>,
    /// Per-node persistent value → dictionary-code indexes, so delta
    /// application never re-hashes a dictionary.
    dict_indexes: Vec<DictIndexes>,
    /// How delete batches hit the node relations (tombstoned nodes skip
    /// the per-round column compaction; see [`ViewState::vacuum`]).
    delete_policy: DeletePolicy,
}

/// Can the fast path maintain this spec? Inner joins only, each base
/// table at most once.
pub fn supports(spec: &ViewSpec) -> bool {
    fn walk(spec: &ViewSpec, tables: &mut HashSet<String>) -> bool {
        match spec {
            ViewSpec::Base { table, .. } => tables.insert(table.clone()),
            ViewSpec::Select { input, .. } | ViewSpec::Project { input, .. } => walk(input, tables),
            ViewSpec::Join {
                left, right, op, ..
            } => *op == JoinOp::Inner && walk(left, tables) && walk(right, tables),
        }
    }
    walk(spec, &mut HashSet::new())
}

/// Name of the hidden rid column for one base label.
fn rid_name(label: &str) -> String {
    format!("__rid_{label}")
}

impl ViewState {
    /// Materialize the augmented view bottom-up and mine its cover.
    pub fn bootstrap(
        db: &Database,
        spec: &ViewSpec,
        algorithm: Algorithm,
        delete_policy: DeletePolicy,
    ) -> Option<ViewState> {
        if !supports(spec) {
            return None;
        }
        let mut nodes: Vec<Node> = Vec::new();
        let root = build_node(db, spec, &mut nodes)?;
        let root_rel = &nodes[root].rel;
        let visible_ids: Vec<AttrId> = (0..root_rel.ncols())
            .filter(|&i| !root_rel.schema.name(i).starts_with("__rid_"))
            .collect();
        let visible: AttrSet = visible_ids.iter().copied().collect();
        let cover = CoverState::bootstrap(root_rel, visible, algorithm);
        let base_rids = nodes
            .iter()
            .filter_map(|n| match &n.op {
                NodeOp::Base { table } => Some((
                    table.clone(),
                    RidState {
                        rids: (0..n.rel.nrows() as i64).collect(),
                        next: n.rel.nrows() as i64,
                    },
                )),
                _ => None,
            })
            .collect();
        let join_indexes = nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                NodeOp::Join { left, right, on } => {
                    let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                    let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                    Some((
                        i,
                        (
                            JoinIndex::build(&nodes[*left].rel, &lkeys),
                            JoinIndex::build(&nodes[*right].rel, &rkeys),
                        ),
                    ))
                }
                _ => None,
            })
            .collect();
        let dict_indexes = nodes.iter().map(|n| DictIndexes::build(&n.rel)).collect();
        Some(ViewState {
            nodes,
            root,
            visible_ids,
            cover,
            base_rids,
            join_indexes,
            dict_indexes,
            delete_policy,
        })
    }

    /// The maintained minimal cover, densified onto the visible columns
    /// (ids match the real view's column order).
    pub fn dense_cover(&self) -> FdSet {
        let mut dense = vec![usize::MAX; self.nodes[self.root].rel.ncols()];
        for (d, &v) in self.visible_ids.iter().enumerate() {
            dense[v] = d;
        }
        self.cover
            .fds
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| dense[a]).collect::<AttrSet>(),
                    dense[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_minimal(fd);
                s
            })
    }

    /// Schema of the visible columns (the real view's schema).
    pub fn dense_schema(&self) -> Schema {
        let rel = &self.nodes[self.root].rel;
        let mut schema = Schema::new();
        for &v in &self.visible_ids {
            schema.push(rel.schema.attr(v).clone());
        }
        schema
    }

    /// Current number of (live) view rows.
    pub fn view_rows(&self) -> usize {
        self.nodes[self.root].rel.live_rows()
    }

    /// Is `table` one of the view's base tables?
    pub fn involves(&self, table: &str) -> bool {
        self.base_rids.contains_key(table)
    }

    /// Propagate one base-table batch through the node tree and maintain
    /// the cover. Returns `None` when the table is not part of the view.
    pub fn apply_table(&mut self, table: &str, batch: &DeltaBatch) -> Option<CoverDeltaStats> {
        self.base_rids.get(table)?;

        // Stable-id bookkeeping: which logical rows die, which are born.
        let rid_state = self.base_rids.get_mut(table).expect("checked above");
        let mut dead = vec![false; rid_state.rids.len()];
        for &d in &batch.deletes {
            dead[d as usize] = true;
        }
        let deleted_rids: HashSet<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| is_dead.then_some(rid))
            .collect();
        let fresh_rids: Vec<i64> = (0..batch.inserts.len() as i64)
            .map(|i| rid_state.next + i)
            .collect();
        rid_state.next += batch.inserts.len() as i64;
        let mut kept: Vec<i64> = rid_state
            .rids
            .iter()
            .zip(&dead)
            .filter_map(|(&rid, &is_dead)| (!is_dead).then_some(rid))
            .collect();
        kept.extend(&fresh_rids);
        rid_state.rids = kept;

        // Phase 1 — compute every changed node's Δ relation bottom-up.
        // Joins probe the *persistent* sibling index with the delta rows,
        // so the work is delta-sized — no pass over unchanged relations.
        let deltas: Vec<Option<Relation>> = {
            let mut deltas: Vec<Option<Relation>> = Vec::with_capacity(self.nodes.len());
            for (i, node) in self.nodes.iter().enumerate() {
                let d = match &node.op {
                    NodeOp::Base { table: t } => {
                        if t == table && !batch.inserts.is_empty() {
                            Some(augmented_rows(
                                &node.rel.schema,
                                &batch.inserts,
                                &fresh_rids,
                            ))
                        } else {
                            None
                        }
                    }
                    NodeOp::Select { child, predicate } => deltas[*child].as_ref().map(|d| {
                        let rows =
                            select_rows(d, predicate).expect("predicate resolved at bootstrap");
                        d.gather(&rows, format!("Δ{i}"))
                    }),
                    NodeOp::Project { child, keep } => deltas[*child]
                        .as_ref()
                        .map(|d| d.project(keep, format!("Δ{i}"))),
                    NodeOp::Join { left, right, on } => {
                        let (left_index, right_index) =
                            self.join_indexes.get(&i).expect("index built at bootstrap");
                        match (&deltas[*left], &deltas[*right]) {
                            (None, None) => None,
                            (Some(dl), None) => Some(probe_join(
                                dl,
                                &self.nodes[*right].rel,
                                right_index,
                                &on.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
                                &node.rel.schema,
                                true,
                            )),
                            (None, Some(dr)) => Some(probe_join(
                                dr,
                                &self.nodes[*left].rel,
                                left_index,
                                &on.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
                                &node.rel.schema,
                                false,
                            )),
                            (Some(_), Some(_)) => {
                                unreachable!("fast path rejects repeated base tables")
                            }
                        }
                    }
                };
                deltas.push(d);
            }
            deltas
        };

        // Phase 2 — apply one combined batch (rid-matched deletes + Δ
        // inserts) to every node above the changed table, remembering the
        // row remap so the join indexes can follow.
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let rid_col = match node.rid_cols.get(table) {
                Some(&c) => c,
                None => continue, // node not above the changed table
            };
            let mut node_batch = DeltaBatch::new();
            if !deleted_rids.is_empty() {
                // Translate deleted logical ids to this node's rows via
                // the rid column's dictionary codes: hash only the
                // deleted ids, then compare codes (pure integer scan).
                let rid_column = node.rel.column(rid_col);
                let dead_codes: HashSet<u32> = rid_column
                    .dict
                    .iter()
                    .enumerate()
                    .filter_map(|(code, v)| {
                        v.as_i64()
                            .filter(|rid| deleted_rids.contains(rid))
                            .map(|_| code as u32)
                    })
                    .collect();
                if !dead_codes.is_empty() {
                    for (row, code) in rid_column.codes.iter().enumerate() {
                        if dead_codes.contains(code) {
                            node_batch.delete(row as u32);
                        }
                    }
                }
            }
            if let Some(d) = &deltas[i] {
                for row in 0..d.nrows() {
                    node_batch.insert(d.row(row));
                }
            }
            // Consume the node's relation so dictionary extension reuses
            // the Arc in place (no deep clone on fresh values — rid
            // columns bring one every insert round). The rid scan above
            // names *physical* rows, which is exactly what the
            // tombstoned apply consumes — no row-map translation needed
            // at the node level.
            let name = node.rel.name.clone();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let (new_rel, applied) = match self.delete_policy {
                DeletePolicy::Compact => {
                    old.apply_delta_owned(&node_batch, name, &mut self.dict_indexes[i])
                }
                DeletePolicy::Tombstone => old.apply_delta_tombstoned(
                    &node_batch.deletes,
                    &node_batch.inserts,
                    name,
                    &mut self.dict_indexes[i],
                ),
            };
            node.rel = new_rel;
            applied_by_node[i] = Some(applied);
        }

        // Phase 2.5 — carry join indexes across their children's version
        // changes (delta-sized hashing, integer remaps).
        for (i, (left_index, right_index)) in self.join_indexes.iter_mut() {
            let NodeOp::Join { left, right, on } = &self.nodes[*i].op else {
                unreachable!("join_indexes only holds join nodes");
            };
            if let Some(applied) = &applied_by_node[*left] {
                let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                left_index.patch(&self.nodes[*left].rel, &lkeys, applied);
            }
            if let Some(applied) = &applied_by_node[*right] {
                let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                right_index.patch(&self.nodes[*right].rel, &rkeys, applied);
            }
        }

        // Phase 3 — bring the cover across the root's version change.
        let applied = applied_by_node[self.root]
            .take()
            .expect("root is above every base table");
        let stats = self.cover.maintain(&self.nodes[self.root].rel, &applied);
        Some(stats)
    }

    /// Memory accounting over every node relation (rid columns and their
    /// dictionaries included — the append-only growth a vacuum reclaims).
    pub fn tombstone_stats(&self) -> TombstoneStats {
        let mut stats = TombstoneStats::default();
        for node in &self.nodes {
            stats.merge(TombstoneStats::of(&node.rel));
        }
        stats
    }

    /// Vacuum every tombstoned node: drop dead rows, rewrite the rid
    /// columns, garbage-collect dictionaries (dead rid values and dead
    /// data values alike), carry the persistent join indexes across the
    /// row moves, rebase the root cover's PLIs and witnesses, and
    /// rebuild the per-node dictionary indexes. The maintained cover and
    /// the stable logical rids are unchanged.
    pub fn vacuum(&mut self) -> VacuumStats {
        let t0 = std::time::Instant::now();
        let mut stats = VacuumStats::default();
        let mut applied_by_node: Vec<Option<AppliedDelta>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.rel.has_tombstones() {
                continue;
            }
            stats.relations += 1;
            stats.rows_dropped += node.rel.tombstone_count();
            let old = std::mem::replace(&mut node.rel, Relation::empty("", Schema::new()));
            let dicts_before = dict_entries(&old);
            let (v, applied) = old.vacuum();
            stats.dict_entries_dropped += dicts_before - dict_entries(&v);
            self.dict_indexes[i] = DictIndexes::build(&v);
            node.rel = v;
            applied_by_node[i] = Some(applied);
        }
        // Join indexes follow their children's row moves (values are
        // unchanged, so the keys stay valid — only row ids renumber).
        for (i, (left_index, right_index)) in self.join_indexes.iter_mut() {
            let NodeOp::Join { left, right, on } = &self.nodes[*i].op else {
                unreachable!("join_indexes only holds join nodes");
            };
            if let Some(applied) = &applied_by_node[*left] {
                let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
                left_index.patch(&self.nodes[*left].rel, &lkeys, applied);
            }
            if let Some(applied) = &applied_by_node[*right] {
                let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
                right_index.patch(&self.nodes[*right].rel, &rkeys, applied);
            }
        }
        if let Some(applied) = applied_by_node[self.root].take() {
            self.cover.rebase_rows(&self.nodes[self.root].rel, &applied);
        }
        stats.duration = t0.elapsed();
        stats
    }

    /// Soak/debug hook: the maintained cover must equal a from-scratch
    /// mine of the current root relation. O(full mine); tests only.
    pub fn self_check(&self) {
        self.cover.self_check(&self.nodes[self.root].rel);
    }
}

/// Build the augmented Δ relation for inserted base rows.
fn augmented_rows(schema: &Schema, inserts: &[Vec<Value>], rids: &[i64]) -> Relation {
    let mut builder = RelationBuilder::new("Δbase", schema.clone());
    for (row, &rid) in inserts.iter().zip(rids) {
        let mut r = row.clone();
        r.push(Value::Int(rid));
        builder.push_row(r);
    }
    builder.finish()
}

/// Join delta rows against the sibling side through its persistent index,
/// producing rows in the join node's schema (left columns then right).
/// Cost: `O(|Δ| + matches)` — the sibling relation is only row-gathered
/// at matched positions.
fn probe_join(
    delta: &Relation,
    other: &Relation,
    other_index: &JoinIndex,
    delta_keys: &[AttrId],
    schema: &Schema,
    delta_is_left: bool,
) -> Relation {
    let mut builder = RelationBuilder::new("Δ⋈", schema.clone());
    for row in 0..delta.nrows() {
        let Some(key) = key_of(delta, row, delta_keys) else {
            continue; // NULL key joins nothing
        };
        for &o in other_index.get(&key) {
            let vals = if delta_is_left {
                let mut v = delta.row(row);
                v.extend(other.row(o as usize));
                v
            } else {
                let mut v = other.row(o as usize);
                v.extend(delta.row(row));
                v
            };
            builder.push_row(vals);
        }
    }
    builder.finish()
}

/// Recursively materialize `spec` (augmented), appending to `nodes`;
/// returns the node index, or `None` if resolution fails.
fn build_node(db: &Database, spec: &ViewSpec, nodes: &mut Vec<Node>) -> Option<usize> {
    let node = match spec {
        ViewSpec::Base { table, alias } => {
            let base = db.get(table)?;
            let label = alias.as_deref().unwrap_or(table);
            let mut schema = Schema::new();
            for attr in base.schema.iter() {
                schema.push(attr.clone());
            }
            schema.push(Attribute::new(rid_name(label)));
            let n = base.nrows();
            let mut columns: Vec<Column> =
                (0..base.ncols()).map(|c| base.column(c).clone()).collect();
            columns.push(Column {
                codes: (0..n as u32).collect(),
                dict: std::sync::Arc::new((0..n as i64).map(Value::Int).collect()),
                null_code: None,
            });
            let rid_col = base.ncols();
            Node {
                op: NodeOp::Base {
                    table: table.clone(),
                },
                rel: Relation::from_columns(format!("aug({table})"), schema, columns, n),
                rid_cols: [(table.clone(), rid_col)].into_iter().collect(),
            }
        }
        ViewSpec::Select { input, predicate } => {
            let child = build_node(db, input, nodes)?;
            let child_rel = &nodes[child].rel;
            let rows = select_rows(child_rel, predicate).ok()?;
            let rel = child_rel.gather(&rows, "aug(σ)");
            Node {
                op: NodeOp::Select {
                    child,
                    predicate: predicate.clone(),
                },
                rel,
                rid_cols: nodes[child].rid_cols.clone(),
            }
        }
        ViewSpec::Project { input, attrs } => {
            let child = build_node(db, input, nodes)?;
            let child_rel = &nodes[child].rel;
            let mut keep: Vec<AttrId> = Vec::new();
            for name in attrs {
                keep.push(resolve(&child_rel.schema, name).ok()?);
            }
            let mut rid_cols = HashMap::new();
            for (table, &c) in &nodes[child].rid_cols {
                rid_cols.insert(table.clone(), keep.len());
                keep.push(c);
            }
            let rel = child_rel.project(&keep, "aug(π)");
            Node {
                op: NodeOp::Project { child, keep },
                rel,
                rid_cols,
            }
        }
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } => {
            debug_assert_eq!(*op, JoinOp::Inner, "fast path rejects non-inner joins");
            let l = build_node(db, left, nodes)?;
            let r = build_node(db, right, nodes)?;
            let (l_rel, r_rel) = (&nodes[l].rel, &nodes[r].rel);
            let on_ids = resolve_join_conditions(&l_rel.schema, &r_rel.schema, on).ok()?;
            let rel = join_relations(l_rel, r_rel, JoinOp::Inner, &on_ids, None, None, "aug(⋈)");
            let nl = l_rel.ncols();
            let mut rid_cols = nodes[l].rid_cols.clone();
            for (table, &c) in &nodes[r].rid_cols {
                rid_cols.insert(table.clone(), c + nl);
            }
            Node {
                op: NodeOp::Join {
                    left: l,
                    right: r,
                    on: on_ids,
                },
                rel,
                rid_cols,
            }
        }
    };
    nodes.push(node);
    Some(nodes.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_algebra::execute;
    use infine_discovery::{same_fds, tane};
    use infine_relation::relation_from_rows;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(4), Value::str("z")],
            ],
        ));
        db
    }

    fn spec() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    /// Oracle: the canonical cover of the real (un-augmented) view.
    fn oracle_cover(db: &Database, spec: &ViewSpec) -> FdSet {
        let view = execute(spec, db).unwrap();
        tane(&view, view.attr_set())
    }

    fn assert_view_current(view: &ViewState, db: &Database, spec: &ViewSpec) {
        let real = execute(spec, db).unwrap();
        assert_eq!(view.view_rows(), real.nrows(), "row count diverged");
        // visible columns match the real view by name and content
        let schema = view.dense_schema();
        for i in 0..schema.len() {
            assert_eq!(schema.name(i), real.schema.name(i), "column order diverged");
        }
        assert!(
            same_fds(&view.dense_cover(), &oracle_cover(db, spec)),
            "cover diverged from the canonical view cover"
        );
    }

    /// Apply a batch to both the view state and the plain database.
    fn apply_both(view: &mut ViewState, db: &mut Database, table: &str, batch: &DeltaBatch) {
        let stats = view.apply_table(table, batch);
        assert!(stats.is_some());
        let (new_table, _) = db.expect(table).apply_delta(batch, table.to_string());
        db.insert(new_table);
    }

    #[test]
    fn supports_rejects_outer_joins_and_repeats() {
        assert!(supports(&spec()));
        assert!(!supports(&ViewSpec::base("p").join(
            ViewSpec::base("q"),
            JoinOp::LeftOuter,
            &[("pid", "pid")],
        )));
        assert!(!supports(&ViewSpec::base_as("p", "x").join(
            ViewSpec::base_as("p", "y"),
            JoinOp::Inner,
            &[("x.pid", "y.pid")],
        )));
    }

    #[test]
    fn bootstrap_matches_real_view() {
        let db = db();
        let view = ViewState::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
            .unwrap();
        assert_view_current(&view, &db, &spec());
    }

    #[test]
    fn inserts_deletes_and_mixed_rounds_stay_current() {
        let mut db = db();
        let spec = spec();
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();

        // insert into p that joins twice
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("b"), Value::Int(5)]);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        // delete from q (drops the joined rows)
        let mut b = DeltaBatch::new();
        b.delete(0).delete(3);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);

        // mixed on p
        let mut b = DeltaBatch::new();
        b.delete(1)
            .insert(vec![Value::Int(3), Value::str("a"), Value::Int(0)])
            .insert(vec![Value::Int(9), Value::str("c"), Value::Int(1)]); // dangles
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        // insert into q matching a previously dangling p row
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("w")]);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn selects_and_projects_are_maintained() {
        let mut db = db();
        let spec = ViewSpec::base("p")
            .select(Predicate::eq("flag", 0i64))
            .inner_join(ViewSpec::base("q"), &["pid"])
            .project(&["grp", "site"]);
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();
        assert_view_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(3), Value::str("c"), Value::Int(0)]) // passes σ, joins
            .insert(vec![Value::Int(1), Value::str("d"), Value::Int(7)]) // filtered by σ
            .delete(0);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);

        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("y")]).delete(2);
        apply_both(&mut view, &mut db, "q", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn delete_then_reinsert_same_key_gets_fresh_rid() {
        let mut db = db();
        let spec = spec();
        let mut view =
            ViewState::bootstrap(&db, &spec, Algorithm::Levelwise, DeletePolicy::Compact).unwrap();
        // delete p row 0 (pid 1), then re-insert an identical row — the
        // fresh rid must not resurrect the dead view rows.
        let mut b = DeltaBatch::new();
        b.delete(0);
        apply_both(&mut view, &mut db, "p", &b);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        apply_both(&mut view, &mut db, "p", &b);
        assert_view_current(&view, &db, &spec);
    }

    #[test]
    fn untouched_table_delta_is_none() {
        let db = db();
        let mut view =
            ViewState::bootstrap(&db, &spec(), Algorithm::Levelwise, DeletePolicy::Compact)
                .unwrap();
        assert!(view.apply_table("unrelated", &DeltaBatch::new()).is_none());
        assert!(view.involves("p") && !view.involves("unrelated"));
    }
}
