//! The maintenance engine: delta-in, report-out.
//!
//! [`MaintenanceEngine`] owns a database, a view specification, and the
//! view's current provenance-annotated FD set. Feeding it
//! [`DeltaRelation`] batches keeps that FD set current **without full
//! re-discovery**, in one of two modes:
//!
//! * [`MaintenanceMode::ExactProvenance`] (default) — per-base-table FD
//!   covers are maintained incrementally (patched PLIs, dirty-class
//!   revalidation, targeted re-mining; see [`crate::cover`]), then the
//!   view-level phases (upstage, infer, mine) are replayed through
//!   [`InFine::discover_incremental`] with base mining skipped entirely.
//!   The resulting report is *triple-for-triple identical* to a fresh
//!   [`InFine::discover`] on the updated database.
//! * [`MaintenanceMode::CoverOnly`] — for inner-join views, the
//!   materialized view itself is maintained through delta joins with
//!   row-id provenance (see [`crate::view`]) and the FD cover is
//!   maintained directly on the patched view. No pipeline replay, no
//!   base mining, no full joins: delta-sized work. The cover equals the
//!   canonical minimal cover of the view (logically equivalent to the
//!   exact mode's triple set); provenance *labels* of fresh FDs are not
//!   re-derived until [`MaintenanceEngine::refresh_provenance`] is
//!   called.
//!
//! Either way, each held FD is classified per round as *untouched*
//! (provenance untouched by the delta), *revalidated* (provenance
//! touched, FD still in the cover), or *invalidated* (no longer in the
//! cover) — the provenance-guided revalidation the paper's triples make
//! possible.

use crate::cover::{CoverDeltaStats, CoverState};
use crate::obs::{EngineObs, RoundMetrics};
use crate::view::{self, ViewBackend, ViewMode, ViewState, VirtualView};
use infine_algebra::ViewSpec;
use infine_core::{
    base_scopes, BaseFds, BaseScope, FdKind, InFine, InFineError, InFineReport, ProvenanceTriple,
};
use infine_discovery::{Fd, FdSet};
use infine_relation::{Database, DeltaBatch, DeltaRelation, DictIndexes, Relation, RowMap, Schema};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the maintenance engine.
#[derive(Debug)]
pub enum MaintenanceError {
    /// A delta targeted a relation the database does not contain.
    UnknownTable(String),
    /// One `apply` call carried two batches for the same table (batch row
    /// ids are relative to one version; merge them before applying).
    DuplicateTarget(String),
    /// A batch is malformed (delete row id out of range, insert arity
    /// mismatch). Rejected before any state is touched.
    BadBatch(String),
    /// Underlying pipeline failure.
    Pipeline(InFineError),
    /// The maintenance service's worker thread is gone (it panicked or
    /// was shut down); the request could not be (or was not) processed.
    WorkerDied,
    /// The durability layer failed: commitlog/snapshot I/O, unusable
    /// on-disk state, or a snapshot that does not match the requested
    /// view/configuration.
    Durability(String),
    /// Admission control shed this ingest: the maintenance queue was at
    /// capacity and the overflow policy said reject (or the blocking
    /// deadline elapsed). `shed` is how many batches were dropped —
    /// none of them were queued, so the producer's stream position is
    /// unchanged and it may simply re-offer them.
    Overloaded {
        /// Batches in the shed ingest call.
        shed: usize,
    },
    /// The supervisor's circuit breaker is open: the worker died too
    /// many times inside the breaker window and automatic respawns are
    /// refused until the cooldown elapses (then one half-open probe is
    /// allowed through).
    BreakerOpen,
    /// A deadline-bounded call (`recv_report_timeout`, `flush_deadline`,
    /// `shutdown_deadline`) ran out of time before the worker responded.
    Timeout,
}

impl From<InFineError> for MaintenanceError {
    fn from(e: InFineError) -> Self {
        MaintenanceError::Pipeline(e)
    }
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceError::UnknownTable(t) => {
                write!(f, "delta targets unknown relation {t:?}")
            }
            MaintenanceError::DuplicateTarget(t) => write!(
                f,
                "two delta batches for {t:?} in one apply call; merge them first"
            ),
            MaintenanceError::BadBatch(msg) => write!(f, "malformed delta batch: {msg}"),
            MaintenanceError::Pipeline(e) => write!(f, "{e}"),
            MaintenanceError::WorkerDied => {
                write!(f, "maintenance worker is gone (panicked or shut down)")
            }
            MaintenanceError::Durability(msg) => write!(f, "durability failure: {msg}"),
            MaintenanceError::Overloaded { shed } => write!(
                f,
                "maintenance queue at capacity: {shed} batch(es) shed by admission control"
            ),
            MaintenanceError::BreakerOpen => write!(
                f,
                "supervisor circuit breaker is open: respawn refused until the cooldown elapses"
            ),
            MaintenanceError::Timeout => write!(f, "maintenance deadline elapsed"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// How the engine keeps the FD set current (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Exact provenance triples every round (pipeline replay with base
    /// mining skipped).
    #[default]
    ExactProvenance,
    /// Delta-sized cover maintenance on the materialized view; provenance
    /// labels refresh on demand. Falls back to exact-provenance rounds
    /// when the spec has outer joins or repeated tables.
    CoverOnly,
}

/// How the engine applies delete batches to its stored relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletePolicy {
    /// Compact columns eagerly on every delete batch — `O(rows · cols)`
    /// per affected relation, the original behavior. Memory stays tight
    /// without vacuums, at the price of O(table) delete rounds.
    #[default]
    Compact,
    /// Mark deleted rows in a tombstone bitmap (`O(|Δ|)` per batch; no
    /// column rewrite, no row-id shifts for survivors) and restore the
    /// compact invariant on demand with [`MaintenanceEngine::vacuum`] /
    /// [`ShardedEngine`](crate::ShardedEngine) vacuum, or by service
    /// policy ([`crate::service::VacuumPolicy`]). The externally visible
    /// row addressing is unchanged — batches keep speaking logical
    /// (compacted) row ids; the engine translates via
    /// [`RowMap`](infine_relation::RowMap).
    Tombstone,
}

/// Accounting of one vacuum pass (see [`MaintenanceEngine::vacuum`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct VacuumStats {
    /// Relations compacted (stored tables, scoped base states, view
    /// nodes).
    pub relations: usize,
    /// Tombstoned rows physically dropped.
    pub rows_dropped: usize,
    /// Dictionary entries garbage-collected (dead values reclaimed).
    pub dict_entries_dropped: usize,
    /// Wall-clock of the pass.
    pub duration: Duration,
}

impl VacuumStats {
    /// Fold another pass's accounting into this one.
    pub fn merge(&mut self, other: VacuumStats) {
        self.relations += other.relations;
        self.rows_dropped += other.rows_dropped;
        self.dict_entries_dropped += other.dict_entries_dropped;
        self.duration += other.duration;
    }

    /// True iff the pass found nothing to reclaim.
    pub fn is_noop(&self) -> bool {
        self.relations == 0
    }
}

/// Point-in-time memory accounting of an engine's relation state
/// (stored tables + scoped base states + view nodes, rid columns
/// included). `physical_rows - live_rows` is the reclaimable garbage;
/// [`TombstoneStats::fraction`] drives the service's vacuum policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TombstoneStats {
    /// Physical rows held (dead included), summed over relations.
    pub physical_rows: usize,
    /// Live rows.
    pub live_rows: usize,
    /// Dictionary entries held, summed over columns of all relations.
    pub dict_entries: usize,
}

impl TombstoneStats {
    /// Dead rows awaiting a vacuum.
    pub fn dead_rows(&self) -> usize {
        self.physical_rows - self.live_rows
    }

    /// Dead fraction of the physical rows (0 when empty).
    pub fn fraction(&self) -> f64 {
        if self.physical_rows == 0 {
            0.0
        } else {
            self.dead_rows() as f64 / self.physical_rows as f64
        }
    }

    /// Fold another relation's accounting into this one.
    pub fn merge(&mut self, other: TombstoneStats) {
        self.physical_rows += other.physical_rows;
        self.live_rows += other.live_rows;
        self.dict_entries += other.dict_entries;
    }

    /// Accounting of one relation.
    pub fn of(rel: &Relation) -> TombstoneStats {
        TombstoneStats {
            physical_rows: rel.nrows(),
            live_rows: rel.live_rows(),
            dict_entries: dict_entries(rel),
        }
    }
}

/// Sum of every column's dictionary length (vacuum accounting).
pub(crate) fn dict_entries(rel: &Relation) -> usize {
    (0..rel.ncols()).map(|c| rel.column(c).dict_len()).sum()
}

/// How one previously-held FD fared under a delta batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FdStatus {
    /// No base table under the FD's justifying sub-query changed; the FD
    /// is still valid with no data touched.
    Untouched,
    /// The provenance was touched, the FD was revalidated, and it is
    /// still part of the minimal cover.
    Revalidated,
    /// The FD no longer belongs to the view's minimal cover (it broke, or
    /// a newly valid smaller FD evicted it).
    Invalidated,
}

impl FdStatus {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FdStatus::Untouched => "untouched",
            FdStatus::Revalidated => "revalidated",
            FdStatus::Invalidated => "invalidated",
        }
    }
}

/// Wall-clock breakdown of one [`MaintenanceEngine::apply`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaintenanceTimings {
    /// Applying delta batches to base tables and scoped projections.
    pub delta_apply: Duration,
    /// Per-base-table cover maintenance (PLI patching, revalidation,
    /// targeted re-mining).
    pub base_maintain: Duration,
    /// View maintenance in cover-only mode (delta joins + view cover).
    pub view_maintain: Duration,
    /// View-level pipeline replay (`discover_incremental`), exact mode.
    pub pipeline: Duration,
}

impl MaintenanceTimings {
    /// Total maintenance wall-clock.
    pub fn total(&self) -> Duration {
        self.delta_apply + self.base_maintain + self.view_maintain + self.pipeline
    }
}

/// Per-base-table accounting of one maintenance round.
#[derive(Debug, Clone)]
pub struct BaseMaintenance {
    /// Base label (alias or table name).
    pub label: String,
    /// Underlying table.
    pub table: String,
    /// Scoped rows before the batch.
    pub rows_before: usize,
    /// Rows after.
    pub rows_after: usize,
    /// Rows deleted by the batch.
    pub deleted: usize,
    /// Rows inserted.
    pub inserted: usize,
    /// Cover maintenance accounting (held/broken/recovered/surfaced FDs,
    /// PLI patch counters).
    pub cover: CoverDeltaStats,
}

/// The result of one maintenance round — the incremental mirror of
/// [`InFineReport`]: the new FD cover plus what the delta did to the
/// previously held one.
#[derive(Debug)]
pub struct MaintenanceReport {
    /// Schema of the view's projected output.
    pub schema: Schema,
    /// The current minimal FD cover of the view.
    pub cover: FdSet,
    /// Provenance triples. Exact mode: the complete post-batch set,
    /// identical to a fresh [`InFine::discover`]. Cover-only mode: the
    /// surviving triples with their last-known labels (fresh FDs appear
    /// in [`MaintenanceReport::fresh`] until the next provenance
    /// refresh).
    pub triples: Vec<ProvenanceTriple>,
    /// Classification of every FD held before the batch.
    pub held: Vec<(ProvenanceTriple, FdStatus)>,
    /// FDs in the new cover that were not held before.
    pub fresh: Vec<Fd>,
    /// Per-changed-table maintenance accounting.
    pub base: Vec<BaseMaintenance>,
    /// View-cover accounting (cover-only mode rounds).
    pub view_cover: Option<CoverDeltaStats>,
    /// True when `triples` carries exact, freshly derived provenance.
    pub exact_provenance: bool,
    /// Vacuum pass folded into this round (service-triggered — by policy
    /// threshold or an explicit vacuum command). `None` for plain rounds.
    pub vacuum: Option<VacuumStats>,
    /// Wall-clock breakdown.
    pub timings: MaintenanceTimings,
    /// What the round recorded into the engine's metrics registry
    /// (kernel checks, cache traffic, phase timings — exact per-round
    /// deltas; see [`RoundMetrics`]).
    pub metrics: RoundMetrics,
}

impl MaintenanceReport {
    /// The new FD cover as a set.
    pub fn fd_set(&self) -> FdSet {
        self.cover.clone()
    }

    /// Count held FDs with one status.
    pub fn count_status(&self, status: FdStatus) -> usize {
        self.held.iter().filter(|(_, s)| *s == status).count()
    }

    /// The invalidated triples.
    pub fn invalidated(&self) -> impl Iterator<Item = &ProvenanceTriple> {
        self.held
            .iter()
            .filter(|(_, s)| *s == FdStatus::Invalidated)
            .map(|(t, _)| t)
    }

    /// Count triples of one provenance kind.
    pub fn count_kind(&self, kind: FdKind) -> usize {
        self.triples.iter().filter(|t| t.kind == kind).count()
    }

    /// One-line summary (status counts + timings).
    pub fn summary(&self) -> String {
        format!(
            "{} FDs ({} untouched, {} revalidated, {} invalidated, {} fresh) in {:.2?}",
            self.cover.len(),
            self.count_status(FdStatus::Untouched),
            self.count_status(FdStatus::Revalidated),
            self.count_status(FdStatus::Invalidated),
            self.fresh.len(),
            self.timings.total(),
        )
    }

    /// Render the triples with attribute names.
    pub fn render(&self) -> String {
        self.triples
            .iter()
            .map(|t| t.render(&self.schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Maintained state for one base occurrence (label) of the view.
struct BaseState {
    scope: BaseScope,
    /// Current scoped relation (the columns step 1 mines). Tombstoned
    /// under [`DeletePolicy::Tombstone`]; its physical row space is its
    /// own (independent of the stored table's once they diverge).
    rel: Relation,
    /// Maintained minimal FD cover of `rel` plus backing partitions.
    cover: CoverState,
    /// Persistent dictionary index of `rel` (delta-sized encoding).
    dict_index: DictIndexes,
    /// Logical → physical row map of `rel` (identity under
    /// [`DeletePolicy::Compact`]).
    row_map: RowMap,
}

/// Stateful incremental FD maintenance over one view.
///
/// See the [module docs](self) for the algorithm; see
/// [`MaintenanceEngine::apply`] for the per-batch contract.
pub struct MaintenanceEngine {
    infine: InFine,
    spec: ViewSpec,
    db: Database,
    states: Vec<BaseState>,
    mode: MaintenanceMode,
    /// Which backend cover-only rounds run on (materialized view vs
    /// join-index-only virtual view).
    view_mode: ViewMode,
    /// Fast-path view backend (cover-only mode on supported specs).
    view: Option<Box<dyn ViewBackend>>,
    /// Last exact pipeline report (stale in cover-only mode until
    /// [`MaintenanceEngine::refresh_provenance`]).
    report: InFineReport,
    /// The current cover (exact mode: the report's triple set; cover-only
    /// mode: the canonical minimal cover, densified to the view schema).
    cover: FdSet,
    /// Labels whose base-table FD state missed deltas (cover-only rounds
    /// defer per-table maintenance; resynced on demand).
    stale: HashSet<String>,
    /// How delete batches hit the stored relations.
    delete_policy: DeletePolicy,
    /// Persistent dictionary indexes of the stored base tables, built on
    /// a table's first delta.
    table_indexes: HashMap<String, DictIndexes>,
    /// Logical → physical row maps of stored tables that are tombstoned
    /// (cover-only fast rounds under [`DeletePolicy::Tombstone`]).
    table_row_maps: HashMap<String, RowMap>,
    /// Rendered sub-query → base tables beneath it (provenance
    /// classification index).
    subquery_tables: HashMap<String, HashSet<String>>,
    /// Scoped metrics registry + round/phase/vacuum handles.
    obs: EngineObs,
}

impl MaintenanceEngine {
    /// Bootstrap: full discovery once, then per-table FD/PLI state.
    pub fn new(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        MaintenanceEngine::with_mode(infine, db, spec, MaintenanceMode::default())
    }

    /// Bootstrap with an explicit maintenance mode (and the default,
    /// compacting delete policy).
    pub fn with_mode(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        mode: MaintenanceMode,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        MaintenanceEngine::with_options(
            infine,
            db,
            spec,
            mode,
            DeletePolicy::default(),
            ViewMode::default(),
        )
    }

    /// Bootstrap with explicit mode, delete policy, and view backend.
    /// [`ViewMode::JoinIndex`] falls back to the materialized backend on
    /// specs outside the virtual subset (see
    /// [`view::supports_virtual`]).
    pub fn with_options(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        mode: MaintenanceMode,
        delete_policy: DeletePolicy,
        view_mode: ViewMode,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        // The engine's own registry scopes everything from bootstrap
        // mining onward (kernel checks, cache traffic, miner timings).
        let obs = EngineObs::new(EngineObs::scoped_registry(), "maintenance");
        let _obs_scope = obs.registry.enter();
        let states = bootstrap_states(&db, &spec, infine.config.base_algorithm)?;
        let algorithm = infine.config.base_algorithm;
        let base_fds: BaseFds = states
            .iter()
            .map(|s| (s.scope.label.clone(), s.cover.fds.clone()))
            .collect();
        let report = infine.discover_incremental(&db, &spec, &base_fds)?;
        let cover = report.fd_set();
        let subquery_tables = subquery_table_index(&spec);
        let view = if mode == MaintenanceMode::CoverOnly {
            bootstrap_backend(&db, &spec, algorithm, delete_policy, view_mode)
        } else {
            None
        };
        Ok(MaintenanceEngine {
            infine,
            spec,
            db,
            states,
            mode,
            view_mode,
            view,
            report,
            cover,
            stale: HashSet::new(),
            delete_policy,
            table_indexes: HashMap::new(),
            table_row_maps: HashMap::new(),
            subquery_tables,
            obs,
        })
    }

    /// Bootstrap with the default pipeline configuration.
    pub fn with_defaults(
        db: Database,
        spec: ViewSpec,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        MaintenanceEngine::new(InFine::default(), db, spec)
    }

    /// Bootstrap the per-base cover state only, skipping the view-level
    /// pipeline run — [`MaintenanceEngine::report`] and
    /// [`MaintenanceEngine::fd_set`] start empty and stay stale until
    /// [`MaintenanceEngine::refresh_provenance`]. The fragment-engine
    /// constructor of the sharded service, which consumes only
    /// [`MaintenanceEngine::base_covers`] / `apply_base_only`.
    pub(crate) fn new_base_only(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        delete_policy: DeletePolicy,
        registry: infine_obs::Registry,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        // Fragment engines share the sharded façade's registry (and its
        // `engine="sharded"` label) instead of scoping their own: the
        // fleet is one logical engine.
        let obs = EngineObs::new(registry, "sharded");
        let _obs_scope = obs.registry.enter();
        let states = bootstrap_states(&db, &spec, infine.config.base_algorithm)?;
        let subquery_tables = subquery_table_index(&spec);
        Ok(MaintenanceEngine {
            infine,
            spec,
            db,
            states,
            mode: MaintenanceMode::ExactProvenance,
            view_mode: ViewMode::default(),
            view: None,
            report: InFineReport {
                schema: Schema::new(),
                triples: Vec::new(),
                timings: infine_core::PhaseTimings::default(),
                stats: infine_core::PipelineStats::default(),
            },
            cover: FdSet::new(),
            stale: HashSet::new(),
            delete_policy,
            table_indexes: HashMap::new(),
            table_row_maps: HashMap::new(),
            subquery_tables,
            obs,
        })
    }

    /// Rebuild a base-only fragment engine from snapshotted state: the
    /// fragment database (vacuum-canonical, persisted verbatim) and the
    /// per-label covers mined before the snapshot. The scoped relations
    /// re-project from the database — byte-equal to what was running,
    /// because projection shares columns and both sides are compact —
    /// and [`CoverState::restore`] recomputes partitions without
    /// re-mining, which is what makes recovery strictly cheaper than a
    /// bootstrap.
    pub(crate) fn restore_base_only(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        delete_policy: DeletePolicy,
        registry: infine_obs::Registry,
        covers: &BaseFds,
    ) -> Result<MaintenanceEngine, MaintenanceError> {
        let obs = EngineObs::new(registry, "sharded");
        let _obs_scope = obs.registry.enter();
        let states = base_scopes(&db, &spec)?
            .into_iter()
            .map(|scope| {
                let rel = scope.project(&db);
                let attrs = rel.attr_set();
                let fds = covers.get(&scope.label).cloned().ok_or_else(|| {
                    MaintenanceError::Durability(format!(
                        "snapshot carries no cover for base label {:?}",
                        scope.label
                    ))
                })?;
                let cover = CoverState::restore(&rel, attrs, fds);
                let dict_index = DictIndexes::build(&rel);
                let row_map = RowMap::identity(rel.nrows());
                Ok(BaseState {
                    scope,
                    rel,
                    cover,
                    dict_index,
                    row_map,
                })
            })
            .collect::<Result<Vec<BaseState>, MaintenanceError>>()?;
        let subquery_tables = subquery_table_index(&spec);
        Ok(MaintenanceEngine {
            infine,
            spec,
            db,
            states,
            mode: MaintenanceMode::ExactProvenance,
            view_mode: ViewMode::default(),
            view: None,
            report: InFineReport {
                schema: Schema::new(),
                triples: Vec::new(),
                timings: infine_core::PhaseTimings::default(),
                stats: infine_core::PipelineStats::default(),
            },
            cover: FdSet::new(),
            stale: HashSet::new(),
            delete_policy,
            table_indexes: HashMap::new(),
            table_row_maps: HashMap::new(),
            subquery_tables,
            obs,
        })
    }

    /// The maintained view specification.
    pub fn spec(&self) -> &ViewSpec {
        &self.spec
    }

    /// The current database (base tables after every applied batch).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The active maintenance mode.
    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// The configured view backend mode.
    pub fn view_mode(&self) -> ViewMode {
        self.view_mode
    }

    /// The backend actually carrying cover-only rounds right now —
    /// `None` outside cover-only mode, and [`ViewMode::Materialized`]
    /// when a [`ViewMode::JoinIndex`] request fell back on an
    /// unsupported spec.
    pub fn active_view_mode(&self) -> Option<ViewMode> {
        self.view.as_ref().map(|v| v.mode())
    }

    /// Resident materialized view rows the active backend holds — zero
    /// for the virtual backend (and outside cover-only mode).
    pub fn resident_view_rows(&self) -> usize {
        self.view.as_ref().map_or(0, |v| v.resident_view_rows())
    }

    /// Does the spec support the cover-only fast path (inner joins, no
    /// repeated base table)?
    pub fn supports_cover_fast_path(&self) -> bool {
        view::supports(&self.spec)
    }

    /// Switch modes. Entering cover-only mode (re)materializes the
    /// augmented view; entering exact mode refreshes provenance so the
    /// report is current again.
    pub fn set_mode(&mut self, mode: MaintenanceMode) -> Result<(), MaintenanceError> {
        if mode == self.mode {
            return Ok(());
        }
        self.mode = mode;
        match mode {
            MaintenanceMode::CoverOnly => {
                // The view materializes from the stored tables — they
                // must be compact (no-op unless fast tombstone rounds
                // preceded a round-trip through exact mode).
                self.compact_stored_tables();
                self.view = bootstrap_backend(
                    &self.db,
                    &self.spec,
                    self.infine.config.base_algorithm,
                    self.delete_policy,
                    self.view_mode,
                );
            }
            MaintenanceMode::ExactProvenance => {
                self.view = None;
                self.refresh_provenance()?;
            }
        }
        Ok(())
    }

    /// The last exact pipeline report. Current in exact mode; in
    /// cover-only mode it reflects the last bootstrap/refresh (call
    /// [`MaintenanceEngine::refresh_provenance`] to bring it current).
    pub fn report(&self) -> &InFineReport {
        &self.report
    }

    /// The current FD cover of the view.
    pub fn fd_set(&self) -> FdSet {
        self.cover.clone()
    }

    /// A publishable read snapshot as of `round` — unsharded parity with
    /// [`ShardedEngine::published_covers`](crate::ShardedEngine::published_covers).
    pub fn published_covers(&mut self, round: u64) -> crate::read::PublishedCovers {
        crate::read::PublishedCovers {
            round,
            base: self.base_covers(),
            cover: self.fd_set(),
            triples: self.report.triples.clone(),
            tombstones: self.tombstone_stats(),
        }
    }

    /// Re-derive exact provenance triples for the current database by
    /// replaying the pipeline with the maintained base FD sets (base
    /// mining skipped — except for tables whose per-table state went
    /// stale during cover-only rounds, which are re-mined here once).
    /// Updates [`MaintenanceEngine::report`].
    pub fn refresh_provenance(&mut self) -> Result<&InFineReport, MaintenanceError> {
        let _obs_scope = self.obs.registry.enter();
        // The pipeline replays on the stored tables; restore the compact
        // invariant first (no-op outside tombstoned fast rounds).
        self.compact_stored_tables();
        self.resync_stale_states();
        let base_fds: BaseFds = self
            .states
            .iter()
            .map(|s| (s.scope.label.clone(), s.cover.fds.clone()))
            .collect();
        self.report = self
            .infine
            .discover_incremental(&self.db, &self.spec, &base_fds)?;
        if self.mode == MaintenanceMode::ExactProvenance {
            self.cover = self.report.fd_set();
        }
        Ok(&self.report)
    }

    /// Apply one batch.
    pub fn apply_one(
        &mut self,
        delta: &DeltaRelation,
    ) -> Result<MaintenanceReport, MaintenanceError> {
        self.apply(std::slice::from_ref(delta))
    }

    /// Apply a round of delta batches (at most one per base table) and
    /// bring the FD set current.
    ///
    /// Row ids in each batch address the targeted table *as of the
    /// previous round*. The returned report carries the new cover, the
    /// per-FD classification, per-table accounting, and the timing
    /// breakdown.
    pub fn apply(
        &mut self,
        deltas: &[DeltaRelation],
    ) -> Result<MaintenanceReport, MaintenanceError> {
        let _obs_scope = self.obs.registry.enter();
        let obs_before = self.obs.registry.snapshot();
        let round_t0 = Instant::now();
        let mut timings = MaintenanceTimings::default();
        // Validate every batch before touching any state: a mid-round
        // panic would leave the engine's db/view/cover inconsistent.
        validate_deltas(&self.db, deltas)?;

        let mut changed_tables: HashSet<String> = HashSet::new();
        let mut base_reports: Vec<BaseMaintenance> = Vec::new();
        let mut view_cover_stats: Option<CoverDeltaStats> = None;
        let use_fast = self.mode == MaintenanceMode::CoverOnly && self.view.is_some();
        if !use_fast {
            // Defensive: per-table state that missed fast-round deltas
            // must be current before it is maintained further or fed to
            // the pipeline (mode switches already resync, so this is a
            // no-op in practice).
            self.resync_stale_states();
        }

        for delta in deltas {
            if delta.batch.is_empty() {
                continue;
            }
            changed_tables.insert(delta.target.clone());

            // Fast path first: the view state needs the pre-batch table
            // untouched only via its own caches, but run it before the
            // db swap for clarity.
            if use_fast {
                let t0 = Instant::now();
                if let Some(stats) = self
                    .view
                    .as_mut()
                    .expect("use_fast checked")
                    .apply_table(&delta.target, &delta.batch)
                {
                    let merged = view_cover_stats.get_or_insert_with(CoverDeltaStats::default);
                    merged.held += stats.held;
                    merged.broken += stats.broken;
                    merged.recovered += stats.recovered;
                    merged.surfaced += stats.surfaced;
                    merged.plis_patched += stats.plis_patched;
                    merged.plis_evicted += stats.plis_evicted;
                    merged.dirty_classes += stats.dirty_classes;
                }
                timings.view_maintain += t0.elapsed();
            }

            // Patch the stored base table (taken out of the database so
            // the dictionary Arcs are extended in place, not cloned).
            // Fast rounds under the tombstone policy mark instead of
            // compacting — the stored table is not read again until
            // provenance refresh/resync, which vacuum first. The exact
            // path keeps the table compact: the pipeline replays on it
            // this very round.
            let t0 = Instant::now();
            let table = self.db.remove(&delta.target).expect("validated above");
            let index = self
                .table_indexes
                .entry(delta.target.clone())
                .or_insert_with(|| DictIndexes::build(&table));
            let new_table = if use_fast && self.delete_policy == DeletePolicy::Tombstone {
                let map = self
                    .table_row_maps
                    .entry(delta.target.clone())
                    .or_insert_with(|| RowMap::identity(table.nrows()));
                let phys = map.rebase_batch(&delta.batch, table.nrows());
                let (t, _) = table.apply_delta_tombstoned(
                    &phys,
                    &delta.batch.inserts,
                    delta.target.clone(),
                    index,
                );
                t
            } else {
                let (t, _) = table.apply_delta_owned(&delta.batch, delta.target.clone(), index);
                t
            };
            self.db.insert(new_table);
            timings.delta_apply += t0.elapsed();

            // Maintain every base occurrence of that table — or, in fast
            // rounds, defer (the per-table state is only needed when
            // provenance is refreshed).
            if use_fast {
                for state in self.states.iter() {
                    if state.scope.table == delta.target {
                        self.stale.insert(state.scope.label.clone());
                    }
                }
            } else {
                for state in self
                    .states
                    .iter_mut()
                    .filter(|s| s.scope.table == delta.target)
                {
                    base_reports.push(maintain_base(
                        state,
                        &delta.batch,
                        self.delete_policy,
                        &mut timings,
                    ));
                }
            }
        }

        // Snapshot the pre-batch provenance labels before the report is
        // replaced — the held-FD classification reports them.
        let old_triples: HashMap<Fd, ProvenanceTriple> = self
            .report
            .triples
            .iter()
            .map(|t| (t.fd, t.clone()))
            .collect();

        // Compute the new cover (and, in exact mode, the new triples).
        let (new_cover, new_triples, exact) = if use_fast {
            let view = self.view.as_ref().expect("use_fast checked");
            let cover = view.dense_cover();
            // Surviving triples keep their last-known labels.
            let triples: Vec<ProvenanceTriple> = self
                .report
                .triples
                .iter()
                .filter(|t| cover.contains(&t.fd))
                .cloned()
                .collect();
            (cover, triples, false)
        } else {
            let t0 = Instant::now();
            let base_fds: BaseFds = self
                .states
                .iter()
                .map(|s| (s.scope.label.clone(), s.cover.fds.clone()))
                .collect();
            let new_report = self
                .infine
                .discover_incremental(&self.db, &self.spec, &base_fds)?;
            timings.pipeline += t0.elapsed();
            let cover = new_report.fd_set();
            let triples = new_report.triples.clone();
            self.report = new_report;
            (cover, triples, true)
        };

        // Provenance-guided classification of the previously held cover.
        let old_cover = std::mem::replace(&mut self.cover, new_cover.clone());
        let (held, fresh) = classify_round(
            &old_triples,
            &old_cover,
            &new_cover,
            &self.subquery_tables,
            &changed_tables,
        );

        let schema = if exact {
            self.report.schema.clone()
        } else {
            self.view
                .as_ref()
                .map(|v| v.dense_schema())
                .unwrap_or_else(|| self.report.schema.clone())
        };
        self.obs.observe_round(&timings, round_t0.elapsed());
        Ok(MaintenanceReport {
            schema,
            cover: new_cover,
            triples: new_triples,
            held,
            fresh,
            base: base_reports,
            view_cover: view_cover_stats,
            exact_provenance: exact,
            vacuum: None,
            timings,
            metrics: RoundMetrics::capture(&self.obs.registry, &obs_before),
        })
    }

    /// The maintained per-base-occurrence FD covers, keyed by label — the
    /// [`BaseFds`] this engine would feed to
    /// [`InFine::discover_incremental`]. Labels whose state went stale
    /// during cover-only rounds are resynced first.
    pub fn base_covers(&mut self) -> BaseFds {
        self.resync_stale_states();
        self.states
            .iter()
            .map(|s| (s.scope.label.clone(), s.cover.fds.clone()))
            .collect()
    }

    /// [`MaintenanceEngine::base_covers`] restricted to the labels whose
    /// underlying table is in `tables` — the per-round slice the sharded
    /// engine re-merges (covers of untouched labels are cached there,
    /// so cloning them would be waste).
    pub(crate) fn base_covers_for(&mut self, tables: &HashSet<String>) -> BaseFds {
        self.resync_stale_states();
        self.states
            .iter()
            .filter(|s| tables.contains(&s.scope.table))
            .map(|s| (s.scope.label.clone(), s.cover.fds.clone()))
            .collect()
    }

    /// Maintain only the per-base-table covers through a round, skipping
    /// the view-level pipeline replay and FD classification entirely —
    /// the fragment-engine workhorse of the sharded service, where a
    /// shard's view-level state is never read and only
    /// [`MaintenanceEngine::base_covers`] is consumed.
    ///
    /// After this call [`MaintenanceEngine::report`] and
    /// [`MaintenanceEngine::fd_set`] lag the database (bring them current
    /// with [`MaintenanceEngine::refresh_provenance`]); `base_covers`
    /// stays exact. A later [`MaintenanceEngine::apply`] still produces a
    /// correct new cover — only its held-FD baseline is the last exact
    /// report.
    pub(crate) fn apply_base_only(
        &mut self,
        deltas: &[DeltaRelation],
    ) -> Result<(Vec<BaseMaintenance>, MaintenanceTimings), MaintenanceError> {
        let _obs_scope = self.obs.registry.enter();
        validate_deltas(&self.db, deltas)?;
        self.resync_stale_states();
        let mut timings = MaintenanceTimings::default();
        let mut reports = Vec::new();
        for delta in deltas {
            if delta.batch.is_empty() {
                continue;
            }
            // Patch the stored fragment table. Base-only engines never
            // replay a pipeline on it, so the tombstone policy can mark
            // instead of compacting indefinitely — vacuum reclaims.
            let t0 = Instant::now();
            let table = self.db.remove(&delta.target).expect("validated above");
            let index = self
                .table_indexes
                .entry(delta.target.clone())
                .or_insert_with(|| DictIndexes::build(&table));
            let new_table = if self.delete_policy == DeletePolicy::Tombstone {
                let map = self
                    .table_row_maps
                    .entry(delta.target.clone())
                    .or_insert_with(|| RowMap::identity(table.nrows()));
                let phys = map.rebase_batch(&delta.batch, table.nrows());
                let (t, _) = table.apply_delta_tombstoned(
                    &phys,
                    &delta.batch.inserts,
                    delta.target.clone(),
                    index,
                );
                t
            } else {
                let (t, _) = table.apply_delta_owned(&delta.batch, delta.target.clone(), index);
                t
            };
            self.db.insert(new_table);
            timings.delta_apply += t0.elapsed();
            for state in self
                .states
                .iter_mut()
                .filter(|s| s.scope.table == delta.target)
            {
                reports.push(maintain_base(
                    state,
                    &delta.batch,
                    self.delete_policy,
                    &mut timings,
                ));
            }
        }
        Ok((reports, timings))
    }

    /// The active delete policy.
    pub fn delete_policy(&self) -> DeletePolicy {
        self.delete_policy
    }

    /// Point-in-time memory accounting: physical vs live rows and
    /// dictionary entries across every relation this engine holds
    /// (stored tables, scoped base states, view nodes with their rid
    /// columns). [`TombstoneStats::fraction`] is what the service's
    /// vacuum policy thresholds on.
    pub fn tombstone_stats(&self) -> TombstoneStats {
        let mut stats = TombstoneStats::default();
        for name in self.db.names() {
            stats.merge(TombstoneStats::of(self.db.expect(name)));
        }
        for state in &self.states {
            stats.merge(TombstoneStats::of(&state.rel));
        }
        if let Some(view) = &self.view {
            stats.merge(view.tombstone_stats());
        }
        stats
    }

    /// Restore the compact invariant everywhere: vacuum every tombstoned
    /// relation (stored tables, scoped base states, and — in cover-only
    /// mode — the materialized view's nodes, whose rid columns and
    /// dictionaries are garbage-collected along the way), rebase the
    /// cached PLIs and violation witnesses across the move, rebuild the
    /// dictionary indexes, and reset the row maps to the identity.
    ///
    /// The maintained covers, reports, and the externally visible
    /// logical row addressing are all unchanged — vacuum moves bytes,
    /// never answers. Idempotent; a no-op on a fully compact engine.
    pub fn vacuum(&mut self) -> VacuumStats {
        let _obs_scope = self.obs.registry.enter();
        let t0 = Instant::now();
        let mut stats = VacuumStats::default();
        stats.merge(self.compact_stored_tables());

        let stale = &self.stale;
        for state in &mut self.states {
            if !state.rel.has_tombstones() || stale.contains(&state.scope.label) {
                // Stale states are rebuilt wholesale at the next resync;
                // compacting them now would be wasted work.
                continue;
            }
            stats.relations += 1;
            stats.rows_dropped += state.rel.tombstone_count();
            let old = std::mem::replace(&mut state.rel, Relation::empty("", Schema::new()));
            let dicts_before = dict_entries(&old);
            let (v, applied) = old.vacuum();
            stats.dict_entries_dropped += dicts_before - dict_entries(&v);
            state.cover.rebase_rows(&v, &applied);
            state.dict_index = DictIndexes::build(&v);
            state.row_map.reset_identity(v.nrows());
            state.rel = v;
        }

        if let Some(view) = self.view.as_mut() {
            stats.merge(view.vacuum());
        }
        stats.duration = t0.elapsed();
        self.obs.observe_vacuum(&stats);
        stats
    }

    /// Vacuum the *stored tables* only (the relations the pipeline and
    /// scope projections read) — the guard run before any path that
    /// consumes them, and the first phase of [`MaintenanceEngine::vacuum`].
    fn compact_stored_tables(&mut self) -> VacuumStats {
        let mut stats = VacuumStats::default();
        let names: Vec<String> = self.db.names().map(str::to_string).collect();
        for name in names {
            let table = self.db.remove(&name).expect("listed above");
            if !table.has_tombstones() {
                self.db.insert(table);
                continue;
            }
            stats.relations += 1;
            stats.rows_dropped += table.tombstone_count();
            let dicts_before = dict_entries(&table);
            let (v, _) = table.vacuum();
            stats.dict_entries_dropped += dicts_before - dict_entries(&v);
            // Codes changed: the persistent dictionary index and the
            // logical row map both restart from the compact relation.
            self.table_indexes
                .insert(name.clone(), DictIndexes::build(&v));
            if let Some(map) = self.table_row_maps.get_mut(&name) {
                map.reset_identity(v.nrows());
            }
            self.db.insert(v);
        }
        stats
    }

    /// Soak/debug hook: verify the engine's incremental state against
    /// from-scratch rebuilds — every non-stale base state's cover,
    /// partitions, and witnesses are checked against its scoped relation
    /// ([`CoverState::self_check`]), and — under the tombstone policy,
    /// the only one that maintains them — row maps must agree with their
    /// relations' live counts. O(full re-mine); tests only.
    pub fn self_check(&self) {
        // Compact rounds never consult or update the logical row maps
        // (they are reset wholesale by vacuum/resync), so row-map sync
        // is only an invariant under tombstones.
        let maps_maintained = self.delete_policy == DeletePolicy::Tombstone;
        for state in &self.states {
            assert!(
                !maps_maintained || state.row_map.len() == state.rel.live_rows(),
                "{}: row map diverged from live rows",
                state.scope.label
            );
            if !self.stale.contains(&state.scope.label) {
                state.cover.self_check(&state.rel);
            }
        }
        for (name, map) in &self.table_row_maps {
            assert!(
                !maps_maintained || map.len() == self.db.expect(name).live_rows(),
                "{name}: table row map diverged from live rows"
            );
        }
    }
}

/// Validate a round of delta batches against `db` without touching any
/// state: unknown targets, duplicate targets, out-of-range deletes, and
/// arity-mismatched inserts are all rejected up front (shared by
/// [`MaintenanceEngine::apply`] and the sharded engine).
pub(crate) fn validate_deltas(
    db: &Database,
    deltas: &[DeltaRelation],
) -> Result<(), MaintenanceError> {
    let mut seen: HashSet<&str> = HashSet::new();
    for d in deltas {
        let Some(table) = db.get(&d.target) else {
            return Err(MaintenanceError::UnknownTable(d.target.clone()));
        };
        if !seen.insert(&d.target) {
            return Err(MaintenanceError::DuplicateTarget(d.target.clone()));
        }
        if let Some(&row) = d
            .batch
            .deletes
            .iter()
            .find(|&&r| r as usize >= table.live_rows())
        {
            return Err(MaintenanceError::BadBatch(format!(
                "delete of row {row} out of range for {:?} ({} rows)",
                d.target,
                table.live_rows()
            )));
        }
        if let Some(bad) = d.batch.inserts.iter().find(|r| r.len() != table.ncols()) {
            return Err(MaintenanceError::BadBatch(format!(
                "insert arity {} does not match {:?} ({} columns)",
                bad.len(),
                d.target,
                table.ncols()
            )));
        }
    }
    Ok(())
}

/// Does the triple's justifying sub-query sit above a changed table?
/// Unknown sub-query strings (defensive) count as touched.
fn provenance_touched(
    subquery_tables: &HashMap<String, HashSet<String>>,
    t: &ProvenanceTriple,
    changed: &HashSet<String>,
) -> bool {
    match subquery_tables.get(&t.subquery) {
        Some(tables) => tables.iter().any(|tb| changed.contains(tb)),
        None => !changed.is_empty(),
    }
}

/// Provenance-guided classification of a round: how each FD of the
/// previously held cover fared (with its best-known provenance label),
/// plus the FDs fresh in the new cover. Shared by the unsharded engine
/// and the sharded service so per-round classifications are identical by
/// construction.
pub(crate) fn classify_round(
    old_triples: &HashMap<Fd, ProvenanceTriple>,
    old_cover: &FdSet,
    new_cover: &FdSet,
    subquery_tables: &HashMap<String, HashSet<String>>,
    changed: &HashSet<String>,
) -> (Vec<(ProvenanceTriple, FdStatus)>, Vec<Fd>) {
    let held = old_cover
        .iter()
        .map(|fd| {
            // Use the best provenance label we have for the held FD; FDs
            // without one (fresh under cover-only rounds, whose labels
            // were never derived) get a synthetic one.
            let triple = old_triples
                .get(&fd)
                .cloned()
                .unwrap_or_else(|| ProvenanceTriple::new(fd, FdKind::JoinFd, "Δ-maintained"));
            let status = if !new_cover.contains(&fd) {
                FdStatus::Invalidated
            } else if provenance_touched(subquery_tables, &triple, changed) {
                FdStatus::Revalidated
            } else {
                FdStatus::Untouched
            };
            (triple, status)
        })
        .collect();
    let fresh: Vec<Fd> = new_cover
        .iter()
        .filter(|fd| !old_cover.contains(fd))
        .collect();
    (held, fresh)
}

impl MaintenanceEngine {
    /// Rebuild per-table FD state for every label that missed deltas
    /// during cover-only rounds.
    fn resync_stale_states(&mut self) {
        if self.stale.is_empty() {
            return;
        }
        // Stale states re-project from the stored tables, which must be
        // compact (tombstoned fast rounds leave them marked).
        self.compact_stored_tables();
        let algorithm = self.infine.config.base_algorithm;
        for state in self.states.iter_mut() {
            if self.stale.remove(&state.scope.label) {
                resync_state(state, &self.db, algorithm);
            }
        }
        self.stale.clear();
    }
}

/// Bootstrap the cover-only backend `view_mode` asks for:
/// [`ViewMode::JoinIndex`] builds a [`VirtualView`] when the spec is in
/// the virtual subset and falls back to the materialized [`ViewState`]
/// otherwise; [`ViewMode::Materialized`] always materializes. `None`
/// when even the materialized fast path cannot carry the spec.
fn bootstrap_backend(
    db: &Database,
    spec: &ViewSpec,
    algorithm: infine_discovery::Algorithm,
    delete_policy: DeletePolicy,
    view_mode: ViewMode,
) -> Option<Box<dyn ViewBackend>> {
    if view_mode == ViewMode::JoinIndex {
        if let Some(v) = VirtualView::bootstrap(db, spec, algorithm, delete_policy) {
            return Some(Box::new(v));
        }
    }
    ViewState::bootstrap(db, spec, algorithm, delete_policy)
        .map(|v| Box::new(v) as Box<dyn ViewBackend>)
}

/// Mine the per-base-occurrence cover state of a view from scratch — the
/// shared bootstrap block of every engine constructor (unsharded modes
/// and the sharded service's fragment engines alike, so their base-state
/// semantics cannot drift apart).
fn bootstrap_states(
    db: &Database,
    spec: &ViewSpec,
    algorithm: infine_discovery::Algorithm,
) -> Result<Vec<BaseState>, MaintenanceError> {
    Ok(base_scopes(db, spec)?
        .into_iter()
        .map(|scope| {
            let rel = scope.project(db);
            let attrs = rel.attr_set();
            let cover = CoverState::bootstrap(&rel, attrs, algorithm);
            let dict_index = DictIndexes::build(&rel);
            let row_map = RowMap::identity(rel.nrows());
            BaseState {
                scope,
                rel,
                cover,
                dict_index,
                row_map,
            }
        })
        .collect())
}

/// Recompute a base state's scoped relation and cover from the current
/// database (used when the incremental history was skipped).
fn resync_state(state: &mut BaseState, db: &Database, algorithm: infine_discovery::Algorithm) {
    state.rel = state.scope.project(db);
    let attrs = state.rel.attr_set();
    state.cover = CoverState::bootstrap(&state.rel, attrs, algorithm);
    state.dict_index = DictIndexes::build(&state.rel);
    state.row_map.reset_identity(state.rel.nrows());
}

/// Maintain one base occurrence through a batch; returns the accounting.
/// Under [`DeletePolicy::Tombstone`] the scoped batch is translated to
/// the state's physical row space and applied without compaction.
fn maintain_base(
    state: &mut BaseState,
    batch: &DeltaBatch,
    policy: DeletePolicy,
    timings: &mut MaintenanceTimings,
) -> BaseMaintenance {
    let t0 = Instant::now();
    let scoped_batch = batch.project(&state.scope.attrs);
    let name = state.rel.name.clone();
    let old = std::mem::replace(&mut state.rel, Relation::empty("", Schema::new()));
    let rows_before = old.live_rows();
    let (new_rel, applied) = match policy {
        DeletePolicy::Compact => old.apply_delta_owned(&scoped_batch, name, &mut state.dict_index),
        DeletePolicy::Tombstone => {
            let phys = state.row_map.rebase_batch(&scoped_batch, old.nrows());
            old.apply_delta_tombstoned(&phys, &scoped_batch.inserts, name, &mut state.dict_index)
        }
    };
    timings.delta_apply += t0.elapsed();

    let t1 = Instant::now();
    let stats = state.cover.maintain(&new_rel, &applied);
    timings.base_maintain += t1.elapsed();

    let out = BaseMaintenance {
        label: state.scope.label.clone(),
        table: state.scope.table.clone(),
        rows_before,
        rows_after: new_rel.live_rows(),
        deleted: applied.num_deleted(),
        inserted: applied.num_inserted(),
        cover: stats,
    };
    state.rel = new_rel;
    out
}

/// Rendered sub-query → base tables beneath it, for every node of the
/// spec (plus the root-projection label `π(spec)` the pipeline emits when
/// it restricts to the final attribute set).
pub(crate) fn subquery_table_index(spec: &ViewSpec) -> HashMap<String, HashSet<String>> {
    fn walk(spec: &ViewSpec, out: &mut HashMap<String, HashSet<String>>) -> HashSet<String> {
        let tables: HashSet<String> = match spec {
            ViewSpec::Base { table, .. } => [table.clone()].into_iter().collect(),
            ViewSpec::Project { input, .. } | ViewSpec::Select { input, .. } => walk(input, out),
            ViewSpec::Join { left, right, .. } => {
                let mut t = walk(left, out);
                t.extend(walk(right, out));
                t
            }
        };
        out.insert(spec.to_string(), tables.clone());
        tables
    }
    let mut out = HashMap::new();
    let all = walk(spec, &mut out);
    out.insert(format!("π({spec})"), all);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_algebra::execute;
    use infine_discovery::{same_fds, tane};
    use infine_relation::{relation_from_rows, AttrSet, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    fn assert_current(engine: &MaintenanceEngine) {
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(
            engine.report().triples,
            fresh.triples,
            "engine state diverged from full re-discovery"
        );
    }

    /// The engine's database with tombstones compacted away — the oracle
    /// view must be computed over live rows only.
    fn compacted_db(engine: &MaintenanceEngine) -> Database {
        let mut out = Database::new();
        for name in engine.database().names() {
            let (v, _) = engine.database().expect(name).clone().vacuum();
            out.insert(v);
        }
        out
    }

    /// Cover-only invariant: the engine's cover is the canonical minimal
    /// cover of the materialized view (name-aligned).
    fn assert_cover_current(engine: &MaintenanceEngine, schema: &Schema) {
        let compact = compacted_db(engine);
        let real = execute(engine.spec(), &compact).unwrap();
        let canonical = tane(&real, real.attr_set());
        let map: Vec<usize> = (0..schema.len())
            .map(|i| real.schema.expect_id(schema.name(i)))
            .collect();
        let remapped = engine
            .fd_set()
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                    map[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_minimal(fd);
                s
            });
        assert!(
            same_fds(&remapped, &canonical),
            "cover diverged from canonical:\n{:?}\nvs\n{:?}",
            remapped.to_sorted_vec(),
            canonical.to_sorted_vec()
        );
    }

    #[test]
    fn bootstrap_matches_full_discovery() {
        let engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        assert_current(&engine);
    }

    #[test]
    fn insert_breaking_an_fd_is_tracked() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        // grp → flag holds on p; break it with a row that joins (pid 2
        // matches q), so the violation reaches the view.
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
        let report = engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        assert!(
            report.count_status(FdStatus::Invalidated) > 0,
            "{}",
            report.summary()
        );
        assert!(report.base[0].cover.broken > 0);
        assert!(report.exact_provenance);
        // Held FDs are classified with their real pre-batch provenance
        // labels, never the synthetic cover-only placeholder.
        assert!(report
            .held
            .iter()
            .all(|(t, _)| t.subquery != "Δ-maintained"));
        assert_current(&engine);
        assert!(same_fds(&engine.fd_set(), &report.fd_set()));
    }

    #[test]
    fn dangling_insert_upstages_instead_of_invalidating() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        // pid 5 has no partner in q: the base FD grp → flag breaks on p
        // but the violating row dangles out of the inner join, so the
        // view cover is unchanged — the FD merely changes provenance.
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(5), Value::str("a"), Value::Int(9)]);
        let report = engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        assert!(report.base[0].cover.broken > 0);
        assert_eq!(report.count_status(FdStatus::Invalidated), 0);
        assert_current(&engine);
    }

    #[test]
    fn delete_surfacing_an_fd_is_tracked() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.delete(2).delete(3);
        let report = engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        assert_eq!(report.base[0].deleted, 2);
        assert_current(&engine);
        // deletes alone never require revalidation of base FDs
        assert_eq!(report.base[0].cover.broken, 0);
    }

    #[test]
    fn untouched_tables_leave_fds_untouched() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(9), Value::str("z")]);
        let report = engine.apply_one(&DeltaRelation::new("q", batch)).unwrap();
        // base-only FDs justified by p alone are untouched
        let untouched_from_p = report
            .held
            .iter()
            .filter(|(t, s)| *s == FdStatus::Untouched && t.subquery == "p")
            .count();
        assert!(untouched_from_p > 0, "{}", report.summary());
        assert_current(&engine);
    }

    #[test]
    fn mixed_rounds_stay_equivalent() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let rounds: Vec<(&str, DeltaBatch)> = vec![
            ("p", {
                let mut b = DeltaBatch::new();
                b.delete(0)
                    .insert(vec![Value::Int(7), Value::str("b"), Value::Int(0)]);
                b
            }),
            ("q", {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(7), Value::str("x")])
                    .insert(vec![Value::Int(4), Value::str("y")])
                    .delete(1);
                b
            }),
            ("p", {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(8), Value::str("c"), Value::Int(2)])
                    .insert(vec![Value::Int(9), Value::str("c"), Value::Int(2)]);
                b
            }),
        ];
        for (target, batch) in rounds {
            engine
                .apply_one(&DeltaRelation::new(target, batch))
                .unwrap();
            assert_current(&engine);
        }
    }

    #[test]
    fn cover_only_mode_maintains_canonical_cover() {
        let mut engine = MaintenanceEngine::with_mode(
            InFine::default(),
            db(),
            view(),
            MaintenanceMode::CoverOnly,
        )
        .unwrap();
        assert!(engine.supports_cover_fast_path());
        let rounds: Vec<(&str, DeltaBatch)> = vec![
            ("p", {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
                b
            }),
            ("q", {
                let mut b = DeltaBatch::new();
                b.delete(0).insert(vec![Value::Int(4), Value::str("w")]);
                b
            }),
            ("p", {
                let mut b = DeltaBatch::new();
                b.delete(1).delete(2);
                b
            }),
        ];
        for (target, batch) in rounds {
            let report = engine
                .apply_one(&DeltaRelation::new(target, batch))
                .unwrap();
            assert!(!report.exact_provenance);
            assert!(report.view_cover.is_some());
            assert_cover_current(&engine, &report.schema);
        }
        // provenance refresh brings exact triples back, with no base
        // mining, and the pipeline cover is logically the canonical one
        // (id spaces aligned by name first).
        let canonical = engine.fd_set();
        let view_schema = engine
            .view
            .as_ref()
            .map(|v| v.dense_schema())
            .expect("cover-only mode keeps the view");
        let report = engine.refresh_provenance().unwrap();
        assert_eq!(report.timings.base_mining, Duration::ZERO);
        let map: Vec<usize> = (0..view_schema.len())
            .map(|i| report.schema.expect_id(view_schema.name(i)))
            .collect();
        let remapped = canonical
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                    map[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_unchecked(fd);
                s
            });
        assert!(report.fd_set().equivalent(&remapped));
    }

    #[test]
    fn cover_only_falls_back_on_outer_joins() {
        let spec = ViewSpec::base("p").join(
            ViewSpec::base("q"),
            infine_algebra::JoinOp::LeftOuter,
            &[("pid", "pid")],
        );
        let mut engine =
            MaintenanceEngine::with_mode(InFine::default(), db(), spec, MaintenanceMode::CoverOnly)
                .unwrap();
        assert!(!engine.supports_cover_fast_path());
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(9), Value::str("c"), Value::Int(1)]);
        let report = engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        // fell back to the exact path
        assert!(report.exact_provenance);
        assert_current(&engine);
    }

    #[test]
    fn mode_switching_round_trips() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        engine.set_mode(MaintenanceMode::CoverOnly).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(1), Value::str("b"), Value::Int(4)]);
        let report = engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        assert!(!report.exact_provenance);
        engine.set_mode(MaintenanceMode::ExactProvenance).unwrap();
        assert_current(&engine);
    }

    #[test]
    fn batches_to_both_tables_in_one_round() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut bp = DeltaBatch::new();
        bp.insert(vec![Value::Int(5), Value::str("a"), Value::Int(0)]);
        let mut bq = DeltaBatch::new();
        bq.delete(3);
        let report = engine
            .apply(&[DeltaRelation::new("p", bp), DeltaRelation::new("q", bq)])
            .unwrap();
        assert_eq!(report.base.len(), 2);
        assert_current(&engine);
    }

    #[test]
    fn empty_round_is_all_untouched() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let held_before = engine.fd_set().len();
        let report = engine.apply(&[]).unwrap();
        assert_eq!(report.count_status(FdStatus::Untouched), held_before);
        assert!(report.fresh.is_empty());
        assert_current(&engine);
    }

    #[test]
    fn unknown_target_is_rejected() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let err = engine
            .apply_one(&DeltaRelation::new("nope", DeltaBatch::new()))
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::UnknownTable(_)));
    }

    #[test]
    fn malformed_batches_are_rejected_atomically() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let before = engine.fd_set();
        let rows_before = engine.database().expect("p").nrows();

        // First batch is fine, second is out of range: nothing may apply.
        let mut ok = DeltaBatch::new();
        ok.insert(vec![Value::Int(5), Value::str("a"), Value::Int(0)]);
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        let err = engine
            .apply(&[DeltaRelation::new("p", ok), DeltaRelation::new("q", bad)])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        assert_eq!(engine.database().expect("p").nrows(), rows_before);
        assert!(same_fds(&engine.fd_set(), &before));

        // Wrong arity is rejected the same way.
        let mut bad = DeltaBatch::new();
        bad.insert(vec![Value::Int(1)]);
        let err = engine.apply_one(&DeltaRelation::new("p", bad)).unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        assert_current(&engine);
    }

    #[test]
    fn duplicate_target_is_rejected() {
        let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let err = engine
            .apply(&[
                DeltaRelation::new("p", DeltaBatch::new()),
                DeltaRelation::new("p", DeltaBatch::new()),
            ])
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::DuplicateTarget(_)));
    }

    #[test]
    fn aliased_self_join_maintains_both_occurrences() {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "e",
            &["id", "boss"],
            &[
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(2)],
                &[Value::Int(3), Value::Int(1)],
            ],
        ));
        let spec = ViewSpec::base_as("e", "w").join(
            ViewSpec::base_as("e", "m"),
            infine_algebra::JoinOp::Inner,
            &[("boss", "id")],
        );
        let mut engine = MaintenanceEngine::with_defaults(db, spec).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(4), Value::Int(1)]).delete(0);
        let report = engine.apply_one(&DeltaRelation::new("e", batch)).unwrap();
        assert_eq!(report.base.len(), 2); // both w and m maintained
        assert_current(&engine);
    }

    #[test]
    fn tombstone_policy_exact_mode_stays_equivalent() {
        let mut engine = MaintenanceEngine::with_options(
            InFine::default(),
            db(),
            view(),
            MaintenanceMode::ExactProvenance,
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .unwrap();
        let rounds: Vec<(&str, DeltaBatch)> = vec![
            ("p", {
                let mut b = DeltaBatch::new();
                b.delete(0).delete(2);
                b
            }),
            ("q", {
                let mut b = DeltaBatch::new();
                b.delete(1).insert(vec![Value::Int(4), Value::str("w")]);
                b
            }),
            ("p", {
                let mut b = DeltaBatch::new();
                // post-delete logical state of p has rows 0..=1
                b.delete(1)
                    .insert(vec![Value::Int(3), Value::str("b"), Value::Int(1)]);
                b
            }),
        ];
        for (target, batch) in rounds {
            engine
                .apply_one(&DeltaRelation::new(target, batch))
                .unwrap();
            assert_current(&engine);
            engine.self_check();
        }
        // Scoped base states accumulated garbage; vacuum reclaims it and
        // changes no answer.
        let stats_before = engine.tombstone_stats();
        assert!(stats_before.dead_rows() > 0);
        let vac = engine.vacuum();
        assert!(!vac.is_noop());
        assert_eq!(vac.rows_dropped, stats_before.dead_rows());
        let after = engine.tombstone_stats();
        assert_eq!(after.dead_rows(), 0);
        assert!(after.dict_entries <= stats_before.dict_entries);
        assert_current(&engine);
        engine.self_check();
        // Idempotent.
        assert!(engine.vacuum().is_noop());
    }

    #[test]
    fn tombstone_policy_cover_only_rounds_and_refresh() {
        let mut engine = MaintenanceEngine::with_options(
            InFine::default(),
            db(),
            view(),
            MaintenanceMode::CoverOnly,
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .unwrap();
        let rounds: Vec<(&str, DeltaBatch)> = vec![
            ("p", {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
                b
            }),
            ("q", {
                let mut b = DeltaBatch::new();
                b.delete(0)
                    .delete(2)
                    .insert(vec![Value::Int(4), Value::str("w")]);
                b
            }),
            ("p", {
                let mut b = DeltaBatch::new();
                b.delete(1).delete(2);
                b
            }),
        ];
        for (target, batch) in rounds {
            let report = engine
                .apply_one(&DeltaRelation::new(target, batch))
                .unwrap();
            assert!(!report.exact_provenance);
            assert_cover_current(&engine, &report.schema);
        }
        // Stored tables and view nodes hold tombstones now.
        assert!(engine.tombstone_stats().dead_rows() > 0);
        let schema = engine
            .view
            .as_ref()
            .map(|v| v.dense_schema())
            .expect("cover-only keeps the view");
        // Vacuum mid-stream: cover unchanged, memory reclaimed.
        let vac = engine.vacuum();
        assert!(!vac.is_noop());
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
        assert_cover_current(&engine, &schema);
        if let Some(view) = &engine.view {
            view.self_check();
        }
        // Provenance refresh (pipeline on stored tables) auto-compacts
        // anything still marked and lands on full-discovery triples.
        engine.refresh_provenance().unwrap();
        assert_current(&engine);
    }

    #[test]
    fn tombstoned_db_reads_live_rows_for_validation() {
        let mut engine = MaintenanceEngine::with_options(
            InFine::default(),
            db(),
            view(),
            MaintenanceMode::CoverOnly,
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .unwrap();
        let mut b = DeltaBatch::new();
        b.delete(0).delete(1);
        engine.apply_one(&DeltaRelation::new("p", b)).unwrap();
        // p now has 2 live rows (physical 4): a delete of logical row 2
        // must be rejected, logical row 1 accepted.
        let mut bad = DeltaBatch::new();
        bad.delete(2);
        let err = engine.apply_one(&DeltaRelation::new("p", bad)).unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        let mut ok = DeltaBatch::new();
        ok.delete(1);
        engine.apply_one(&DeltaRelation::new("p", ok)).unwrap();
        engine.refresh_provenance().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 1);
        assert_current(&engine);
    }

    #[test]
    fn selection_view_stays_equivalent() {
        let mut engine = MaintenanceEngine::with_defaults(
            db(),
            ViewSpec::base("p")
                .select(infine_algebra::Predicate::eq("flag", 0i64))
                .inner_join(ViewSpec::base("q"), &["pid"]),
        )
        .unwrap();
        let mut batch = DeltaBatch::new();
        batch
            .insert(vec![Value::Int(6), Value::str("b"), Value::Int(0)])
            .delete(1);
        engine.apply_one(&DeltaRelation::new("p", batch)).unwrap();
        assert_current(&engine);
    }
}
