//! Engine-state and round serialization for the durability layer.
//!
//! The service logs one commitlog record per coalesced round
//! ([`encode_round`] / [`decode_round`]) and snapshots the whole
//! [`ShardedEngine`] in *vacuum-canonical* form ([`freeze_engine`] /
//! [`restore_engine`]): the full-table mirror, every fragment database
//! (relations and dictionaries verbatim), per-shard and merged base
//! covers, the shard router's row-home maps, and the current pipeline
//! report. Everything else — PLIs, witnesses, dictionary indexes — is a
//! cache the restore path rebuilds (witnesses lazily: their absence
//! never changes a verdict), which is why recovery skips both base
//! mining and the pipeline replay a cold bootstrap would pay.
//!
//! All payloads ride inside CRC-checked containers (`infine-durability`
//! frames every WAL record and snapshot), so decoding here normally only
//! sees intact bytes; every reader still fails with an error — never a
//! panic — on anything malformed, because corruption tolerance must not
//! depend on the outer checksum being the only line of defense.

use crate::engine::{subquery_table_index, DeletePolicy, MaintenanceEngine, MaintenanceError};
use crate::shard::{fleet_obs, InsertPolicy, RowHome, ShardRouter, ShardedEngine, TableMap};
use crate::view::{ViewMode, VirtualView};
use infine_algebra::ViewSpec;
use infine_core::{base_scopes, BaseFds, FdKind, InFine, InFineReport, ProvenanceTriple};
use infine_discovery::{Fd, FdSet};
use infine_durability::crc32;
use infine_relation::wire::{self, Reader, WireError, Writer};
use infine_relation::{AttrSet, DeltaRelation};
use std::collections::HashMap;

/// Round flag bit: an explicit vacuum command was folded into this
/// round. (Policy-triggered vacuums are *not* logged — they are a pure
/// function of engine state and the caller-supplied policy, so replay
/// re-decides them identically.)
pub(crate) const ROUND_VACUUM: u8 = 1;
/// Round flag bit: an explicit snapshot command arrived with this round
/// (replay repeats the snapshot's canonicalizing vacuum without writing
/// a new snapshot).
pub(crate) const ROUND_SNAPSHOT: u8 = 2;
/// Round flag bit: the round ran degraded (queue depth above the ingest
/// policy's high-water mark), so policy vacuums and policy snapshot cuts
/// were skipped. Replay cannot recompute live queue depth, so the
/// decision is logged and replay skips the same policy triggers.
pub(crate) const ROUND_DEGRADED: u8 = 4;

fn de(e: WireError) -> MaintenanceError {
    MaintenanceError::Durability(e.to_string())
}

// ---- rounds ----

/// Encode one coalesced round: flag bits plus at most one delta batch
/// per table, name-sorted so the record bytes are deterministic.
pub(crate) fn encode_round(deltas: &[DeltaRelation], flags: u8) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(flags);
    let mut sorted: Vec<&DeltaRelation> = deltas.iter().collect();
    sorted.sort_by(|a, b| a.target.cmp(&b.target));
    w.u32(sorted.len() as u32);
    for d in sorted {
        wire::write_delta_relation(&mut w, d);
    }
    w.into_bytes()
}

/// Decode a round record body back into its batches and flag bits.
pub(crate) fn decode_round(bytes: &[u8]) -> Result<(Vec<DeltaRelation>, u8), MaintenanceError> {
    let mut r = Reader::new(bytes);
    let flags = r.u8().map_err(de)?;
    if flags & !(ROUND_VACUUM | ROUND_SNAPSHOT | ROUND_DEGRADED) != 0 {
        return Err(MaintenanceError::Durability(format!(
            "unknown round flags {flags:#04x}"
        )));
    }
    let n = r.count(8, "round batches").map_err(de)?;
    let mut deltas = Vec::with_capacity(n);
    for _ in 0..n {
        deltas.push(wire::read_delta_relation(&mut r).map_err(de)?);
    }
    if !r.is_empty() {
        return Err(MaintenanceError::Durability(format!(
            "{} trailing bytes after round record",
            r.remaining()
        )));
    }
    Ok((deltas, flags))
}

// ---- FDs, covers, provenance ----

fn write_fd(w: &mut Writer, fd: Fd) {
    w.u64(fd.lhs.bits());
    w.u32(fd.rhs as u32);
}

fn read_fd(r: &mut Reader) -> Result<Fd, WireError> {
    let lhs = AttrSet::from_bits(r.u64()?);
    let rhs = r.u32()? as usize;
    if rhs >= AttrSet::MAX_ATTRS {
        return Err(WireError(format!("FD rhs {rhs} out of range")));
    }
    if lhs.contains(rhs) {
        return Err(WireError(format!("trivial FD: rhs {rhs} in lhs {lhs:?}")));
    }
    Ok(Fd { lhs, rhs })
}

fn write_fd_set(w: &mut Writer, fds: &FdSet) {
    let sorted = fds.to_sorted_vec();
    w.u32(sorted.len() as u32);
    for fd in sorted {
        write_fd(w, fd);
    }
}

fn read_fd_set(r: &mut Reader) -> Result<FdSet, WireError> {
    let n = r.count(12, "FDs")?;
    let mut fds = FdSet::new();
    for _ in 0..n {
        // `insert_unchecked` reproduces the stored set exactly — the
        // encoder wrote an already-minimal antichain and re-minimizing
        // could silently drop members of a corrupted one.
        fds.insert_unchecked(read_fd(r)?);
    }
    Ok(fds)
}

fn write_base_fds(w: &mut Writer, covers: &BaseFds) {
    let mut labels: Vec<&String> = covers.keys().collect();
    labels.sort();
    w.u32(labels.len() as u32);
    for label in labels {
        w.str(label);
        write_fd_set(w, &covers[label]);
    }
}

fn read_base_fds(r: &mut Reader) -> Result<BaseFds, WireError> {
    let n = r.count(8, "base covers")?;
    let mut covers = BaseFds::new();
    for _ in 0..n {
        let label = r.str()?;
        let fds = read_fd_set(r)?;
        if covers.insert(label.clone(), fds).is_some() {
            return Err(WireError(format!("duplicate base label {label:?}")));
        }
    }
    Ok(covers)
}

fn write_triples(w: &mut Writer, triples: &[ProvenanceTriple]) {
    w.u32(triples.len() as u32);
    for t in triples {
        write_fd(w, t.fd);
        let kind = FdKind::ALL
            .iter()
            .position(|k| *k == t.kind)
            .expect("every FdKind is in ALL");
        w.u8(kind as u8);
        w.str(&t.subquery);
    }
}

fn read_triples(r: &mut Reader) -> Result<Vec<ProvenanceTriple>, WireError> {
    let n = r.count(17, "provenance triples")?;
    let mut triples = Vec::with_capacity(n);
    for _ in 0..n {
        let fd = read_fd(r)?;
        let kind = r.u8()? as usize;
        let kind = *FdKind::ALL
            .get(kind)
            .ok_or_else(|| WireError(format!("unknown FdKind tag {kind}")))?;
        let subquery = r.str()?;
        triples.push(ProvenanceTriple { fd, kind, subquery });
    }
    Ok(triples)
}

// ---- router ----

fn write_router(w: &mut Writer, router: &ShardRouter) {
    w.u32(router.shards as u32);
    match router.policy {
        InsertPolicy::Spread => w.u8(0),
        InsertPolicy::Fixed(k) => {
            w.u8(1);
            w.u32(k as u32);
        }
    }
    let mut names: Vec<&String> = router.tables.keys().collect();
    names.sort();
    w.u32(names.len() as u32);
    for name in names {
        let tm = &router.tables[name];
        w.str(name);
        w.u64(tm.cursor as u64);
        w.u32(tm.home.len() as u32);
        for h in &tm.home {
            w.u32(h.shard);
            w.u32(h.local);
        }
    }
}

fn read_router(r: &mut Reader) -> Result<ShardRouter, WireError> {
    let shards = r.u32()? as usize;
    if shards == 0 {
        return Err(WireError("router with zero shards".into()));
    }
    let policy = match r.u8()? {
        0 => InsertPolicy::Spread,
        1 => InsertPolicy::Fixed(r.u32()? as usize),
        t => return Err(WireError(format!("unknown insert-policy tag {t}"))),
    };
    let ntables = r.count(4, "router tables")?;
    let mut tables = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let cursor = r.u64()? as usize;
        let nrows = r.count(8, "row homes")?;
        let mut home = Vec::with_capacity(nrows);
        let mut frag_rows = vec![0usize; shards];
        for _ in 0..nrows {
            let shard = r.u32()?;
            let local = r.u32()?;
            if shard as usize >= shards {
                return Err(WireError(format!(
                    "row home names shard {shard} of {shards}"
                )));
            }
            if local as usize != frag_rows[shard as usize] {
                return Err(WireError(format!(
                    "row home local id {local} breaks shard {shard}'s append order"
                )));
            }
            frag_rows[shard as usize] += 1;
            home.push(RowHome { shard, local });
        }
        if tables
            .insert(
                name.clone(),
                TableMap {
                    home,
                    frag_rows,
                    cursor,
                },
            )
            .is_some()
        {
            return Err(WireError(format!("duplicate router table {name:?}")));
        }
    }
    Ok(ShardRouter {
        shards,
        policy,
        tables,
    })
}

// ---- whole-engine snapshots ----

/// Fingerprint of a view specification, stored in every snapshot so
/// recovery against the wrong spec fails loudly instead of replaying a
/// different view's pipeline over restored fragments.
pub(crate) fn spec_digest(spec: &ViewSpec) -> u32 {
    crc32(format!("{spec:?}").as_bytes())
}

/// Serialize a [`ShardedEngine`] in vacuum-canonical form. The engine
/// must hold no tombstones (run [`ShardedEngine::vacuum`] first): the
/// restore path rebuilds every fragment's scoped base state with
/// identity row maps, which is only correct for compacted fragments.
pub(crate) fn freeze_engine(engine: &mut ShardedEngine) -> Result<Vec<u8>, MaintenanceError> {
    if engine.tombstone_stats().dead_rows() != 0 {
        return Err(MaintenanceError::Durability(
            "snapshot requires a vacuumed engine (tombstones present)".into(),
        ));
    }
    let mut w = Writer::new();
    w.u32(spec_digest(&engine.spec));
    w.u8(match engine.shards[0].delete_policy() {
        DeletePolicy::Compact => 0,
        DeletePolicy::Tombstone => 1,
    });
    // The *active* view mode: a join-index request that fell back to
    // the exact path freezes (and restores) as materialized. The
    // virtual view itself is never serialized — only its cover; the
    // chains and join indexes rebuild from the mirror, which is why
    // join-index snapshots stay at base size.
    match engine.active_view_mode() {
        ViewMode::Materialized => w.u8(0),
        ViewMode::JoinIndex => {
            w.u8(1);
            write_fd_set(&mut w, &engine.cover);
        }
    }
    write_router(&mut w, &engine.router);
    wire::write_database(&mut w, &engine.db);
    for s in 0..engine.shards.len() {
        wire::write_database(&mut w, engine.shards[s].database());
        write_base_fds(&mut w, &engine.shards[s].base_covers());
    }
    write_base_fds(&mut w, &engine.merged_base);
    wire::write_schema(&mut w, &engine.report.schema);
    write_triples(&mut w, &engine.report.triples);
    Ok(w.into_bytes())
}

/// Rebuild a [`ShardedEngine`] from [`freeze_engine`] bytes. `infine`
/// and `spec` come from the caller (they configure the pipeline and are
/// not data); the snapshot's spec digest must match. Fragment base
/// states are restored without mining ([`CoverState::restore`]
/// (crate::CoverState::restore) settles the persisted covers), and the
/// persisted report is adopted verbatim — no pipeline replay.
pub(crate) fn restore_engine(
    bytes: &[u8],
    infine: InFine,
    spec: ViewSpec,
) -> Result<ShardedEngine, MaintenanceError> {
    let mut r = Reader::new(bytes);
    let digest = r.u32().map_err(de)?;
    if digest != spec_digest(&spec) {
        return Err(MaintenanceError::Durability(
            "snapshot was cut for a different view specification".into(),
        ));
    }
    let delete_policy = match r.u8().map_err(de)? {
        0 => DeletePolicy::Compact,
        1 => DeletePolicy::Tombstone,
        t => {
            return Err(MaintenanceError::Durability(format!(
                "unknown delete-policy tag {t}"
            )))
        }
    };
    let (view_mode, virtual_cover) = match r.u8().map_err(de)? {
        0 => (ViewMode::Materialized, None),
        1 => (ViewMode::JoinIndex, Some(read_fd_set(&mut r).map_err(de)?)),
        t => {
            return Err(MaintenanceError::Durability(format!(
                "unknown view-mode tag {t}"
            )))
        }
    };
    let router = read_router(&mut r).map_err(de)?;
    let db = wire::read_database(&mut r).map_err(de)?;
    // Cross-check the router against the mirror before paying for the
    // fragments: every mirror table must have a home map covering
    // exactly its rows.
    for name in db.names() {
        let Some(tm) = router.tables.get(name) else {
            return Err(MaintenanceError::Durability(format!(
                "router has no entry for table {name:?}"
            )));
        };
        if tm.home.len() != db.expect(name).nrows() {
            return Err(MaintenanceError::Durability(format!(
                "router maps {} rows of {name:?}, mirror holds {}",
                tm.home.len(),
                db.expect(name).nrows()
            )));
        }
    }
    if router.tables.len() != db.len() {
        return Err(MaintenanceError::Durability(
            "router names tables the mirror does not hold".into(),
        ));
    }
    let (obs, fanout) = fleet_obs();
    let _obs_scope = obs.registry.enter();
    let mut engines = Vec::with_capacity(router.shards);
    for s in 0..router.shards {
        let frag = wire::read_database(&mut r).map_err(de)?;
        for (name, tm) in &router.tables {
            let held = frag.get(name).map(|rel| rel.nrows()).unwrap_or(usize::MAX);
            if held != tm.frag_rows[s] {
                return Err(MaintenanceError::Durability(format!(
                    "shard {s}: fragment {name:?} disagrees with the router's size"
                )));
            }
        }
        let covers = read_base_fds(&mut r).map_err(de)?;
        engines.push(MaintenanceEngine::restore_base_only(
            InFine::new(infine.config),
            frag,
            spec.clone(),
            delete_policy,
            obs.registry.clone(),
            &covers,
        )?);
    }
    let merged_base = read_base_fds(&mut r).map_err(de)?;
    let schema = wire::read_schema(&mut r).map_err(de)?;
    let triples = read_triples(&mut r).map_err(de)?;
    if !r.is_empty() {
        return Err(MaintenanceError::Durability(format!(
            "{} trailing bytes after engine snapshot",
            r.remaining()
        )));
    }
    let scopes = base_scopes(&db, &spec)?;
    let report = InFineReport {
        schema,
        triples,
        timings: infine_core::PhaseTimings::default(),
        stats: infine_core::PipelineStats::default(),
    };
    let subquery_tables = subquery_table_index(&spec);
    // Join-index snapshots carry the maintained virtual cover (it can
    // be ahead of the persisted triples, whose labels froze at
    // bootstrap); the virtual view rebuilds from the restored mirror
    // with that cover pinned — no re-mining.
    let (cover, virtual_view) = match virtual_cover {
        Some(vc) => {
            let vv = VirtualView::restore(&db, &spec, DeletePolicy::Compact, vc.clone())
                .ok_or_else(|| {
                    MaintenanceError::Durability(
                        "join-index snapshot for a spec outside the virtual subset".into(),
                    )
                })?;
            (vc, Some(vv))
        }
        None => (report.fd_set(), None),
    };
    Ok(ShardedEngine {
        infine,
        spec,
        db,
        table_indexes: HashMap::new(),
        router,
        shards: engines,
        scopes,
        merged_base,
        report,
        cover,
        view_mode,
        virtual_view,
        subquery_tables,
        obs,
        fanout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MaintenanceEngine as Unsharded;
    use infine_relation::{relation_from_rows, Database, DeltaBatch, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    fn a_round() -> Vec<DeltaRelation> {
        let mut bp = DeltaBatch::new();
        bp.delete(0)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)]);
        let mut bq = DeltaBatch::new();
        bq.insert(vec![Value::Int(5), Value::str("z")]);
        vec![DeltaRelation::new("q", bq), DeltaRelation::new("p", bp)]
    }

    #[test]
    fn round_codec_round_trips_and_sorts() {
        let round = a_round();
        let bytes = encode_round(&round, ROUND_VACUUM | ROUND_SNAPSHOT);
        let (decoded, flags) = decode_round(&bytes).unwrap();
        assert_eq!(flags, ROUND_VACUUM | ROUND_SNAPSHOT);
        // name-sorted on the wire regardless of input order
        assert_eq!(decoded[0].target, "p");
        assert_eq!(decoded[1].target, "q");
        assert_eq!(decoded[0].batch.deletes, round[1].batch.deletes);
        assert_eq!(decoded[0].batch.inserts, round[1].batch.inserts);
        assert_eq!(decoded[1].batch.inserts, round[0].batch.inserts);
        // deterministic bytes: re-encoding the decoded round is identity
        assert_eq!(encode_round(&decoded, ROUND_VACUUM | ROUND_SNAPSHOT), bytes);
        // empty rounds (flush/vacuum-only) encode fine
        let (empty, flags) = decode_round(&encode_round(&[], 0)).unwrap();
        assert!(empty.is_empty());
        assert_eq!(flags, 0);
    }

    #[test]
    fn round_codec_rejects_garbage_without_panicking() {
        assert!(decode_round(&[]).is_err());
        assert!(decode_round(&[0xFF]).is_err()); // unknown flags
        let mut bytes = encode_round(&a_round(), 0);
        bytes.truncate(bytes.len() - 3);
        assert!(decode_round(&bytes).is_err());
        bytes.push(0);
        for cut in 0..bytes.len() {
            let _ = decode_round(&bytes[..cut]); // must not panic
        }
    }

    #[test]
    fn frozen_engine_restores_to_an_equivalent_engine() {
        let mut original = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        original.apply(&a_round()).unwrap();
        let bytes = freeze_engine(&mut original).unwrap();
        let restored = restore_engine(&bytes, InFine::default(), view()).unwrap();

        assert_eq!(restored.report.triples, original.report.triples);
        assert_eq!(
            restored.cover.to_sorted_vec(),
            original.cover.to_sorted_vec()
        );
        // Mirror and fragments byte-equal (codes and dictionaries).
        for name in ["p", "q"] {
            let a = original.db.expect(name);
            let b = restored.db.expect(name);
            for c in 0..a.ncols() {
                assert_eq!(a.column(c).codes, b.column(c).codes);
                assert_eq!(a.column(c).dict.as_slice(), b.column(c).dict.as_slice());
            }
        }
        restored.self_check();

        // Future rounds diverge in neither triples nor covers: compare a
        // restored engine against the original *and* an unsharded
        // reference across another round.
        let mut restored = restored;
        let mut unsharded = Unsharded::with_defaults(db(), view()).unwrap();
        unsharded.apply(&a_round()).unwrap();
        let mut next = DeltaBatch::new();
        next.delete(1)
            .insert(vec![Value::Int(9), Value::str("d"), Value::Int(3)]);
        let round = vec![DeltaRelation::new("p", next)];
        let a = original.apply(&round).unwrap();
        let b = restored.apply(&round).unwrap();
        let c = unsharded.apply(&round).unwrap();
        assert_eq!(a.triples, b.triples);
        assert_eq!(b.triples, c.triples);
        assert_eq!(a.cover.to_sorted_vec(), b.cover.to_sorted_vec());
    }

    #[test]
    fn restore_rejects_wrong_spec_and_corrupt_payloads() {
        let mut engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let bytes = freeze_engine(&mut engine).unwrap();
        let wrong = ViewSpec::base("p");
        assert!(matches!(
            restore_engine(&bytes, InFine::default(), wrong),
            Err(MaintenanceError::Durability(_))
        ));
        // Every truncation errors, never panics.
        for cut in 0..bytes.len() {
            assert!(restore_engine(&bytes[..cut], InFine::default(), view()).is_err());
        }
    }

    #[test]
    fn freeze_refuses_tombstoned_engines() {
        let mut engine = ShardedEngine::with_options(
            InFine::default(),
            db(),
            view(),
            2,
            InsertPolicy::default(),
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .unwrap();
        let mut b = DeltaBatch::new();
        b.delete(0);
        engine.apply(&[DeltaRelation::new("p", b)]).unwrap();
        assert!(matches!(
            freeze_engine(&mut engine),
            Err(MaintenanceError::Durability(_))
        ));
        engine.vacuum();
        let bytes = freeze_engine(&mut engine).unwrap();
        let restored = restore_engine(&bytes, InFine::default(), view()).unwrap();
        assert_eq!(restored.report.triples, engine.report.triples);
    }
}
