//! The channel-driven maintenance service: deltas in,
//! [`MaintenanceReport`]s out, producers never block on maintenance.
//!
//! [`MaintenanceService::spawn`] moves a [`ShardedEngine`] onto a worker
//! thread and hands back a handle with two channels: a request sender
//! (ingest / flush / vacuum) and a report receiver. Producers [`ingest`]
//! batches at any rate; the worker drains everything queued while it was
//! busy and **coalesces the pending batches per table**
//! ([`DeltaBatch::then`]) before running one sharded maintenance round —
//! so a burst of ten batches against one table costs one round, not ten,
//! and the emitted report describes the combined delta.
//!
//! Batch addressing contract: each ingested batch addresses its table in
//! the *logical stream state* — the base table after every previously
//! *accepted* batch, in ingestion order. That is exactly what a producer
//! tailing its own change feed sees. Malformed batches (unknown table,
//! out-of-range delete, arity mismatch) are rejected at ingestion and
//! surface as `Err` on the report channel without poisoning the pending
//! state; the rest of the failing [`ingest`] call is dropped with them
//! (its batches assumed the rejected one applied). The whole boundary is
//! panic-free: validation plus the fallible [`DeltaBatch::try_then`]
//! composition guarantee a malformed batch can never kill the worker
//! thread. A rejection is a stream fault: batches the producer derived
//! *after* the rejected one — including ones already queued in later
//! ingest calls — may address rows the service never created, so on an
//! `Err` report the producer should re-derive its feed from the engine's
//! actual state (e.g. flush, then rebuild its mirror).
//!
//! ## Vacuum between rounds
//!
//! Under [`DeletePolicy`](crate::DeletePolicy)`::Tombstone` the engine's
//! fragments accumulate dead rows until a vacuum. The service runs one
//! **between rounds** — the ingest loop never stops — in two ways:
//! automatically, when the engine's tombstone fraction exceeds
//! [`VacuumPolicy::max_tombstone_fraction`] after a round; or on demand
//! via [`MaintenanceService::vacuum`] (the explicit vacuum command,
//! which also forces a round so a report is emitted promptly). Either
//! way the pass is recorded in the emitted report's
//! [`vacuum`](MaintenanceReport::vacuum) field.
//!
//! ## Worker death
//!
//! If the worker thread ever panics (a bug, not reachable from malformed
//! input), the handle reports it instead of hanging or panicking the
//! caller: [`ingest`]/[`flush`]/[`vacuum`] return
//! [`MaintenanceError::WorkerDied`], [`recv_report`] yields it once as a
//! final `Err` report, and [`shutdown`] returns it instead of
//! propagating the panic.
//!
//! [`ingest`]: MaintenanceService::ingest
//! [`flush`]: MaintenanceService::flush
//! [`vacuum`]: MaintenanceService::vacuum
//! [`recv_report`]: MaintenanceService::recv_report
//! [`shutdown`]: MaintenanceService::shutdown

use crate::engine::{MaintenanceError, MaintenanceReport, TombstoneStats};
use crate::shard::ShardedEngine;
use infine_relation::{DeltaBatch, DeltaRelation};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Request {
    Ingest(Vec<DeltaRelation>),
    Flush,
    Vacuum,
    /// Test-only: make the worker panic to exercise death handling.
    #[cfg(test)]
    Poison,
}

/// When the service runs a vacuum between rounds (tombstone engines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VacuumPolicy {
    /// Vacuum after any round that leaves the engine's dead-row fraction
    /// ([`TombstoneStats::fraction`]) above this threshold. `None`
    /// disables automatic vacuums (explicit
    /// [`MaintenanceService::vacuum`] commands still work).
    pub max_tombstone_fraction: Option<f64>,
}

impl VacuumPolicy {
    /// Vacuum whenever the dead fraction exceeds `fraction` (0.25 = a
    /// quarter of the physical rows are garbage).
    pub fn at_fraction(fraction: f64) -> VacuumPolicy {
        VacuumPolicy {
            max_tombstone_fraction: Some(fraction),
        }
    }

    fn should(&self, stats: TombstoneStats) -> bool {
        self.max_tombstone_fraction
            .is_some_and(|t| stats.fraction() > t)
    }
}

/// Point-in-time service health, from [`MaintenanceService::stats`] —
/// lock-free reads of counters the handle and the worker share, safe to
/// poll from any thread at any rate.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Delta batches ingested but not yet drained into a round by the
    /// worker (the channel backlog a slow consumer would see grow).
    pub queue_depth: usize,
    /// Maintenance rounds completed since spawn (drained-on-shutdown
    /// rounds included).
    pub rounds_completed: u64,
    /// Wall time of the most recent round (drain + coalesce + apply +
    /// any folded vacuum). Zero until the first round completes.
    pub last_round: Duration,
    /// False once the worker thread has exited — cleanly after
    /// [`MaintenanceService::shutdown`]/drop, or by panicking.
    pub worker_alive: bool,
}

/// Counters shared between the handle and the worker thread.
#[derive(Debug, Default)]
struct SharedStats {
    queue_depth: AtomicI64,
    rounds: AtomicU64,
    last_round_nanos: AtomicU64,
}

/// Preregistered service-loop metric handles. Registered at spawn time
/// on the *caller's* ambient registry (worker threads have no ambient
/// scope of their own), then moved onto the worker.
struct ServiceObs {
    queue_depth: infine_obs::Gauge,
    rounds: infine_obs::Counter,
    batches: infine_obs::Counter,
    coalesced: infine_obs::Counter,
    rejected: infine_obs::Counter,
    round_seconds: infine_obs::Histogram,
}

impl ServiceObs {
    fn resolve() -> ServiceObs {
        infine_obs::with_current(|r| {
            ServiceObs {
            queue_depth: r.gauge(
                "infine_service_queue_depth",
                "Delta batches ingested but not yet drained into a round.",
                &[],
            ),
            rounds: r.counter(
                "infine_service_rounds_total",
                "Maintenance rounds the service loop has completed.",
                &[],
            ),
            batches: r.counter(
                "infine_service_batches_total",
                "Delta batches accepted at ingestion (validation passed).",
                &[],
            ),
            coalesced: r.counter(
                "infine_service_coalesced_total",
                "Accepted batches folded into an already-pending batch for the same table (rounds saved by coalescing).",
                &[],
            ),
            rejected: r.counter(
                "infine_service_rejected_total",
                "Delta batches rejected at ingestion (malformed).",
                &[],
            ),
            round_seconds: r.duration_histogram(
                "infine_service_round_seconds",
                "Wall time of one service round: queue drain, coalescing, the engine round, and any folded vacuum.",
                &[],
            ),
        }
        })
    }
}

/// Handle to a background sharded-maintenance loop.
///
/// ```
/// use infine_core::InFine;
/// use infine_incremental::{MaintenanceService, ShardedEngine};
/// use infine_algebra::ViewSpec;
/// use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
///
/// let mut db = Database::new();
/// db.insert(relation_from_rows(
///     "t",
///     &["k", "v"],
///     &[&[Value::Int(1), Value::Int(10)], &[Value::Int(2), Value::Int(20)]],
/// ));
/// let engine = ShardedEngine::new(InFine::default(), db, ViewSpec::base("t"), 2).unwrap();
/// let service = MaintenanceService::spawn(engine);
/// let mut batch = DeltaBatch::new();
/// batch.insert(vec![Value::Int(3), Value::Int(10)]);
/// service.ingest(vec![DeltaRelation::new("t", batch)]).unwrap();
/// let report = service.recv_report().unwrap().unwrap();
/// assert!(report.exact_provenance);
/// let engine = service.shutdown().unwrap();
/// assert_eq!(engine.database().expect("t").nrows(), 3);
/// ```
pub struct MaintenanceService {
    requests: Sender<Request>,
    reports: Receiver<Result<MaintenanceReport, MaintenanceError>>,
    worker: Option<JoinHandle<ShardedEngine>>,
    /// Worker death is reported through `recv_report` exactly once.
    death_reported: Cell<bool>,
    /// Lock-free health counters shared with the worker.
    stats: Arc<SharedStats>,
    /// Queue-depth gauge (the handle raises it at ingestion, the worker
    /// lowers it when it drains).
    queue_gauge: infine_obs::Gauge,
}

impl MaintenanceService {
    /// Move `engine` onto a worker thread and start the loop (no
    /// automatic vacuums; see [`MaintenanceService::spawn_with_policy`]).
    pub fn spawn(engine: ShardedEngine) -> MaintenanceService {
        MaintenanceService::spawn_with_policy(engine, VacuumPolicy::default())
    }

    /// [`MaintenanceService::spawn`] with a vacuum policy: after each
    /// round the worker checks the engine's tombstone fraction and runs
    /// a per-shard parallel vacuum when the policy says so — between
    /// rounds, without stopping the ingest loop.
    pub fn spawn_with_policy(engine: ShardedEngine, policy: VacuumPolicy) -> MaintenanceService {
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel();
        let stats = Arc::new(SharedStats::default());
        let obs = ServiceObs::resolve();
        let queue_gauge = obs.queue_depth.clone();
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("infine-maintenance".into())
            .spawn(move || run(engine, policy, req_rx, rep_tx, worker_stats, obs))
            .expect("spawn maintenance worker");
        MaintenanceService {
            requests: req_tx,
            reports: rep_rx,
            worker: Some(worker),
            death_reported: Cell::new(false),
            stats,
            queue_gauge,
        }
    }

    /// Queue a round of delta batches (non-blocking).
    /// `Err(WorkerDied)` when the worker is gone (nothing was queued).
    pub fn ingest(&self, deltas: Vec<DeltaRelation>) -> Result<(), MaintenanceError> {
        let queued = deltas.len() as i64;
        self.send(Request::Ingest(deltas))?;
        self.stats.queue_depth.fetch_add(queued, Ordering::Relaxed);
        self.queue_gauge.add(queued);
        Ok(())
    }

    /// Point-in-time service health: queue depth, rounds completed,
    /// last-round latency, and whether the worker thread is alive.
    /// Lock-free; callable from any thread at any rate.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed).max(0) as usize,
            rounds_completed: self.stats.rounds.load(Ordering::Relaxed),
            last_round: Duration::from_nanos(self.stats.last_round_nanos.load(Ordering::Relaxed)),
            worker_alive: self.worker.as_ref().is_some_and(|w| !w.is_finished()),
        }
    }

    /// Force a maintenance round now, even if nothing is pending (the
    /// empty round re-emits the current state with every FD untouched).
    /// `Err(WorkerDied)` when the worker is gone.
    pub fn flush(&self) -> Result<(), MaintenanceError> {
        self.send(Request::Flush)
    }

    /// Run a vacuum pass between rounds (after draining whatever is
    /// pending), regardless of the policy threshold. A round report is
    /// always emitted, carrying the pass's accounting in
    /// [`MaintenanceReport::vacuum`]. `Err(WorkerDied)` when the worker
    /// is gone.
    pub fn vacuum(&self) -> Result<(), MaintenanceError> {
        self.send(Request::Vacuum)
    }

    /// Shared request path: a finished worker (panicked, or somehow
    /// exited) can never process the request, so refuse up front; a
    /// failing send (receiver dropped mid-unwind) means the same thing.
    fn send(&self, req: Request) -> Result<(), MaintenanceError> {
        if self.worker.as_ref().is_none_or(JoinHandle::is_finished) {
            return Err(MaintenanceError::WorkerDied);
        }
        self.requests
            .send(req)
            .map_err(|_| MaintenanceError::WorkerDied)
    }

    /// Block until the next round report (or ingestion error) arrives.
    /// `None` once the worker has exited cleanly (after
    /// [`MaintenanceService::shutdown`]-less drop) and the channel
    /// drained. If the worker *died* (panicked), the disconnect is
    /// reported as one final `Err(`[`MaintenanceError::WorkerDied`]`)`,
    /// then `None`.
    pub fn recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        match self.reports.recv() {
            Ok(r) => Some(r),
            Err(_) => self.report_death(),
        }
    }

    /// Non-blocking report poll (same death contract as
    /// [`MaintenanceService::recv_report`]).
    pub fn try_recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        match self.reports.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => self.report_death(),
        }
    }

    /// A disconnected report channel while this handle is still alive
    /// means the worker exited on its own — it panicked (the only clean
    /// exit is our own sender drop in shutdown/Drop). Surface that once.
    fn report_death(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        if self.death_reported.replace(true) {
            None
        } else {
            Some(Err(MaintenanceError::WorkerDied))
        }
    }

    /// Stop the loop (after a final round draining any pending batches)
    /// and get the engine back for inspection. Unread reports are
    /// discarded with the handle — receive them first if you need them;
    /// the engine's state reflects every drained round either way.
    /// `Err(WorkerDied)` when the worker panicked instead of finishing.
    pub fn shutdown(mut self) -> Result<ShardedEngine, MaintenanceError> {
        drop(std::mem::replace(&mut self.requests, {
            // Dropping the sender is the shutdown signal; replace it with
            // a dangling one so Drop has something to drop.
            std::sync::mpsc::channel().0
        }));
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .map_err(|_| MaintenanceError::WorkerDied)
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Disconnect the request channel so the loop exits, then wait
            // for the final round.
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut self.requests, dangling));
            let _ = worker.join();
        }
    }
}

/// The worker loop: block for work, drain the queue, coalesce, run one
/// round, vacuum by policy/command, repeat. A disconnected request
/// channel ends the loop after a final round for whatever is still
/// pending.
fn run(
    mut engine: ShardedEngine,
    policy: VacuumPolicy,
    requests: Receiver<Request>,
    reports: Sender<Result<MaintenanceReport, MaintenanceError>>,
    stats: Arc<SharedStats>,
    obs: ServiceObs,
) -> ShardedEngine {
    // One round's bookkeeping: observe latency, bump the shared health
    // counters, forward the report.
    let finish_round = |result: Result<MaintenanceReport, MaintenanceError>, t0: Instant| {
        let elapsed = t0.elapsed();
        obs.round_seconds.observe_duration(elapsed);
        obs.rounds.inc();
        stats.rounds.fetch_add(1, Ordering::Relaxed);
        stats
            .last_round_nanos
            .store(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let _ = reports.send(result);
    };
    let mut pending: HashMap<String, DeltaBatch> = HashMap::new();
    while let Ok(first) = requests.recv() {
        let round_t0 = Instant::now();
        let mut queued = vec![first];
        while let Ok(more) = requests.try_recv() {
            queued.push(more);
        }
        let mut flush = false;
        let mut vacuum = false;
        for req in queued {
            match req {
                Request::Ingest(deltas) => {
                    // Drained from the queue, accepted or not.
                    stats
                        .queue_depth
                        .fetch_sub(deltas.len() as i64, Ordering::Relaxed);
                    obs.queue_depth.sub(deltas.len() as i64);
                    // One rejected batch drops the REST of this ingest
                    // request too: every later batch addresses a stream
                    // state that assumed the rejected one applied, so
                    // folding it in would silently hit the wrong rows.
                    // The producer sees the `Err` report and re-derives
                    // its feed from the engine state.
                    for d in deltas {
                        match coalesce_into(&engine, &mut pending, d) {
                            Ok(folded) => {
                                obs.batches.inc();
                                if folded {
                                    obs.coalesced.inc();
                                }
                            }
                            Err(e) => {
                                obs.rejected.inc();
                                let _ = reports.send(Err(e));
                                break;
                            }
                        }
                    }
                }
                Request::Flush => flush = true,
                Request::Vacuum => vacuum = true,
                #[cfg(test)]
                Request::Poison => panic!("test-injected worker panic"),
            }
        }
        if !pending.is_empty() || flush || vacuum {
            let round: Vec<DeltaRelation> = pending
                .drain()
                .map(|(target, batch)| DeltaRelation::new(target, batch))
                .collect();
            let mut result = engine.apply(&round);
            // Vacuum between rounds: commanded, or by policy threshold.
            // The ingest loop keeps running — producers only ever see the
            // pass as accounting on a round report.
            if vacuum || policy.should(engine.tombstone_stats()) {
                let stats = engine.vacuum();
                match result.as_mut() {
                    Ok(report) => report.vacuum = Some(stats),
                    Err(_) => {
                        // The failed round still surfaces as its own Err;
                        // the pass is then acknowledged on an empty
                        // follow-up round, keeping the documented "a
                        // vacuum is always reported" contract (consumers
                        // drain until they see `report.vacuum`).
                        let _ = reports.send(result);
                        result = engine.apply(&[]).map(|mut report| {
                            report.vacuum = Some(stats);
                            report
                        });
                    }
                }
            }
            finish_round(result, round_t0);
        }
    }
    if !pending.is_empty() {
        let round_t0 = Instant::now();
        let round: Vec<DeltaRelation> = pending
            .drain()
            .map(|(target, batch)| DeltaRelation::new(target, batch))
            .collect();
        finish_round(engine.apply(&round), round_t0);
    }
    engine
}

/// Validate one incoming batch against the logical stream state and fold
/// it into the pending per-table batch; `Ok(true)` when it was folded
/// into an already-pending batch for the same table (a round saved by
/// coalescing). Fully fallible: nothing here — including the
/// [`DeltaBatch::try_then`] composition — can panic on malformed input,
/// so a bad batch can never take the worker down.
fn coalesce_into(
    engine: &ShardedEngine,
    pending: &mut HashMap<String, DeltaBatch>,
    delta: DeltaRelation,
) -> Result<bool, MaintenanceError> {
    let Some(table) = engine.database().get(&delta.target) else {
        return Err(MaintenanceError::UnknownTable(delta.target));
    };
    if let Some(bad) = delta
        .batch
        .inserts
        .iter()
        .find(|r| r.len() != table.ncols())
    {
        return Err(MaintenanceError::BadBatch(format!(
            "insert arity {} does not match {:?} ({} columns)",
            bad.len(),
            delta.target,
            table.ncols()
        )));
    }
    let base_nrows = table.live_rows();
    let logical_nrows = match pending.get(&delta.target) {
        None => base_nrows,
        Some(p) => {
            let distinct_deletes: std::collections::HashSet<u32> =
                p.deletes.iter().copied().collect();
            base_nrows - distinct_deletes.len() + p.inserts.len()
        }
    };
    if let Some(&row) = delta
        .batch
        .deletes
        .iter()
        .find(|&&r| r as usize >= logical_nrows)
    {
        return Err(MaintenanceError::BadBatch(format!(
            "delete of row {row} out of range for {:?} ({logical_nrows} rows in the pending state)",
            delta.target
        )));
    }
    match pending.remove(&delta.target) {
        None => {
            pending.insert(delta.target, delta.batch);
            Ok(false)
        }
        Some(p) => match p.try_then(&delta.batch, base_nrows) {
            Ok(folded) => {
                pending.insert(delta.target, folded);
                Ok(true)
            }
            Err(msg) => Err(MaintenanceError::BadBatch(msg)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeletePolicy;
    use crate::shard::InsertPolicy;
    use crate::MaintenanceEngine;
    use infine_algebra::ViewSpec;
    use infine_core::InFine;
    use infine_relation::{relation_from_rows, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    fn tombstone_engine() -> ShardedEngine {
        ShardedEngine::with_options(
            InFine::default(),
            db(),
            view(),
            2,
            InsertPolicy::default(),
            DeletePolicy::Tombstone,
        )
        .unwrap()
    }

    #[test]
    fn service_round_trips_and_matches_full_discovery() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        assert!(report.vacuum.is_none());
        let engine = service.shutdown().unwrap();
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        assert_eq!(report.triples, fresh.triples);
    }

    #[test]
    fn sequential_ingests_for_one_table_coalesce_like_sequential_rounds() {
        // Reference: an unsharded engine fed the two batches as two
        // rounds. The service receives both in one ingest call, coalesces
        // them into one round, and must land in the same state.
        let mut reference = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut b1 = DeltaBatch::new();
        b1.delete(0)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)]);
        // b2 addresses the post-b1 state: rid 3 is the inserted row.
        let mut b2 = DeltaBatch::new();
        b2.delete(3)
            .insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        reference
            .apply_one(&DeltaRelation::new("p", b1.clone()))
            .unwrap();
        reference
            .apply_one(&DeltaRelation::new("p", b2.clone()))
            .unwrap();

        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.report().triples, reference.report().triples);
        assert_eq!(
            report.cover.to_sorted_vec(),
            reference.fd_set().to_sorted_vec()
        );
        // Row values agree (codes may differ through coalescing).
        let a = reference.database().expect("p");
        let b = engine.database().expect("p");
        assert_eq!(a.nrows(), b.nrows());
        for r in 0..a.nrows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn malformed_ingest_surfaces_as_error_without_poisoning() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        service.ingest(vec![DeltaRelation::new("p", bad)]).unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // The loop is still alive and healthy.
        let mut ok = DeltaBatch::new();
        ok.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        service.ingest(vec![DeltaRelation::new("p", ok)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
    }

    #[test]
    fn malformed_coalesced_batch_cannot_kill_the_worker() {
        // A second batch whose deletes are in range of the *base* table
        // but out of range of the coalesced intermediate state: with the
        // panicking `then` this killed the worker; `try_then` turns it
        // into an Err report and the loop survives.
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b1 = DeltaBatch::new();
        b1.delete(0).delete(1).delete(2); // p: 4 rows → 1 row pending
        let mut b2 = DeltaBatch::new();
        b2.delete(2); // in range of base p (4 rows), not of pending (1 row)
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // b1 alone was accepted and the worker is alive: the round ran.
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 1);
    }

    #[test]
    fn flush_emits_an_untouched_round() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let held = engine.fd_set().len();
        let service = MaintenanceService::spawn(engine);
        service.flush().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert_eq!(report.count_status(crate::FdStatus::Untouched), held,);
        service.shutdown().unwrap();
    }

    #[test]
    fn pending_batches_drain_on_shutdown() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(8), Value::str("d"), Value::Int(4)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn worker_death_surfaces_as_errors_not_hangs_or_panics() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service.requests.send(Request::Poison).unwrap();
        // The death is reported exactly once, then the stream ends.
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        assert!(service.recv_report().is_none());
        // Wait out the unwind so the request-side observations below are
        // deterministic (the report channel disconnects mid-unwind).
        while !service.worker.as_ref().unwrap().is_finished() {
            std::thread::yield_now();
        }
        // Every request path errors promptly instead of hanging.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        assert!(matches!(
            service.ingest(vec![DeltaRelation::new("p", b)]),
            Err(MaintenanceError::WorkerDied)
        ));
        assert!(matches!(service.flush(), Err(MaintenanceError::WorkerDied)));
        assert!(matches!(
            service.vacuum(),
            Err(MaintenanceError::WorkerDied)
        ));
        // ... and shutdown reports the death instead of panicking.
        assert!(matches!(
            service.shutdown(),
            Err(MaintenanceError::WorkerDied)
        ));
    }

    #[test]
    fn explicit_vacuum_command_runs_between_rounds() {
        let service = MaintenanceService::spawn(tombstone_engine());
        let mut b = DeltaBatch::new();
        b.delete(0).delete(2);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.vacuum.is_none()); // no policy, no command yet
        service.vacuum().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("vacuum command reports its pass");
        assert!(stats.rows_dropped > 0);
        // The loop keeps serving afterwards.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(7), Value::str("c"), Value::Int(2)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn vacuum_policy_triggers_automatically() {
        let service = MaintenanceService::spawn_with_policy(
            tombstone_engine(),
            VacuumPolicy::at_fraction(0.2),
        );
        // Delete half of p: the fragment garbage crosses the threshold.
        let mut b = DeltaBatch::new();
        b.delete(0).delete(1);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("policy-triggered vacuum");
        assert!(stats.rows_dropped >= 2);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
    }
}
