//! The channel-driven maintenance service: deltas in,
//! [`MaintenanceReport`]s out, producers never block on maintenance
//! unless they opt into a bounded queue.
//!
//! [`MaintenanceService::spawn`] moves a [`ShardedEngine`] onto a worker
//! thread and hands back a handle with two channels: a request sender
//! (ingest / flush / vacuum) and a report receiver. Producers [`ingest`]
//! batches at any rate; the worker drains everything queued while it was
//! busy and **coalesces the pending batches per table**
//! ([`DeltaBatch::then`]) before running one sharded maintenance round —
//! so a burst of ten batches against one table costs one round, not ten,
//! and the emitted report describes the combined delta.
//!
//! Batch addressing contract: each ingested batch addresses its table in
//! the *logical stream state* — the base table after every previously
//! *accepted* batch, in ingestion order. That is exactly what a producer
//! tailing its own change feed sees. Malformed batches (unknown table,
//! out-of-range delete, arity mismatch) are rejected at ingestion and
//! surface as `Err` on the report channel without poisoning the pending
//! state; the rest of the failing [`ingest`] call is dropped with them
//! (its batches assumed the rejected one applied). The whole boundary is
//! panic-free: validation plus the fallible [`DeltaBatch::try_then`]
//! composition guarantee a malformed batch can never kill the worker
//! thread. A rejection is a stream fault: batches the producer derived
//! *after* the rejected one — including ones already queued in later
//! ingest calls — may address rows the service never created, so on an
//! `Err` report the producer should re-derive its feed from the engine's
//! actual state (e.g. flush, then rebuild its mirror).
//!
//! ## Backpressure and admission control
//!
//! By default the request queue is unbounded. An [`IngestPolicy`] with a
//! capacity turns [`ingest`] into an admission decision against the live
//! queue depth, with three overflow behaviors ([`OverflowPolicy`]):
//!
//! - **`Reject`** — shed immediately: the call returns
//!   [`MaintenanceError::Overloaded`] with the batch count, nothing is
//!   queued, and the `infine_service_shed_total` counter records the
//!   loss. The producer's stream position is unchanged; it may re-offer.
//! - **`Block { deadline }`** — wait for the worker to drain below
//!   capacity, up to the deadline; past it the call sheds like `Reject`.
//! - **`CoalesceInPlace`** — never shed, never block: every batch goes
//!   to a shared overflow inbox and the worker folds it into its pending
//!   per-table delta ([`DeltaBatch::try_then`]) at the next drain, so
//!   backlog memory is bounded by table count, not batch count. All
//!   ingests route through the inbox under this policy (mixing the
//!   channel and the inbox would race batch order, and order is load-
//!   bearing for positional deletes).
//!
//! Shed work is never silent: it is an `Err` on the calling side *and* a
//! metric. [`IngestPolicy::degrade_above`] adds graceful degradation: a
//! round that starts with more queued batches than the high-water mark
//! runs **degraded** — policy vacuums are skipped and policy snapshot
//! cuts deferred (explicit commands still honored) so the worker spends
//! its time draining. Degraded rounds are flagged in the commitlog
//! (`ROUND_DEGRADED`) so recovery replays the same decisions.
//!
//! ## Transient faults and retry
//!
//! Durable services classify storage failures: `Interrupted` /
//! `WouldBlock` / `TimedOut` I/O errors are *transient*
//! ([`DurabilityError::is_transient`]); corruption and every other kind
//! are *fatal*. Commitlog appends and snapshot publications run under
//! the [`RetryPolicy`] in [`DurabilityOptions`] — bounded exponential
//! backoff with deterministic jitter, one `infine_retry_attempts_total`
//! tick per absorbed fault. Only a fatal error or an exhausted budget
//! surfaces, and an unloggable round is still DROPPED, not applied: the
//! engine never runs ahead of the log.
//!
//! ## Vacuum between rounds
//!
//! Under [`DeletePolicy`](crate::DeletePolicy)`::Tombstone` the engine's
//! fragments accumulate dead rows until a vacuum. The service runs one
//! **between rounds** — the ingest loop never stops — in two ways:
//! automatically, when the engine's tombstone fraction exceeds
//! [`VacuumPolicy::max_tombstone_fraction`] after a round; or on demand
//! via [`MaintenanceService::vacuum`] (the explicit vacuum command,
//! which also forces a round so a report is emitted promptly). Either
//! way the pass is recorded in the emitted report's
//! [`vacuum`](MaintenanceReport::vacuum) field.
//!
//! ## Worker death and supervision
//!
//! If the worker thread ever panics (a bug, not reachable from malformed
//! input), the handle reports it instead of hanging or panicking the
//! caller: [`ingest`]/[`flush`]/[`vacuum`] return
//! [`MaintenanceError::WorkerDied`], [`recv_report`] yields it once as a
//! final `Err` report, and [`shutdown`] returns it instead of
//! propagating the panic. Durable services can restart from disk —
//! manually via [`respawn`], or automatically when
//! [`SupervisorPolicy::auto_respawn`] is on: the next request finding a
//! dead worker rebuilds it from the snapshot + commitlog (with backoff),
//! guarded by a circuit breaker — [`SupervisorPolicy::breaker_deaths`]
//! deaths inside the window open it ([`MaintenanceError::BreakerOpen`])
//! until the cooldown allows one half-open probe; a clean round closes
//! it. After any respawn the engine holds exactly the durable rounds;
//! [`take_recovery_info`] tells the producer where to resume. Automatic
//! respawn is therefore only safe for producers that can re-derive their
//! feed from that resume point (e.g. insert-only or re-playable
//! streams); positional delete streams should drive [`respawn`]
//! explicitly.
//!
//! [`ingest`]: MaintenanceService::ingest
//! [`flush`]: MaintenanceService::flush
//! [`vacuum`]: MaintenanceService::vacuum
//! [`recv_report`]: MaintenanceService::recv_report
//! [`respawn`]: MaintenanceService::respawn
//! [`take_recovery_info`]: MaintenanceService::take_recovery_info
//! [`shutdown`]: MaintenanceService::shutdown

use crate::engine::{MaintenanceError, MaintenanceReport, TombstoneStats};
use crate::persist;
use crate::read::{CoverCell, CoverReader};
use crate::shard::ShardedEngine;
use infine_algebra::ViewSpec;
use infine_core::{InFine, InFineConfig};
use infine_durability::failpoint::ROUND_COMMIT;
use infine_durability::{
    wal, DurabilityError, FailPoints, RetryPolicy, SnapshotPolicy, SnapshotStore, Wal,
};
use infine_relation::{DeltaBatch, DeltaRelation};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Request {
    Ingest(Vec<DeltaRelation>),
    /// Wake the worker: the overflow inbox has entries to drain.
    Kick,
    Flush,
    Vacuum,
    /// Cut a snapshot now (durable services; a plain flush otherwise).
    Snapshot,
    /// Test-only: make the worker panic to exercise death handling.
    #[cfg(test)]
    Poison,
}

fn dur(e: DurabilityError) -> MaintenanceError {
    MaintenanceError::Durability(e.to_string())
}

/// Lock that shrugs off poisoning: the structures behind these mutexes
/// (overflow inbox, drain signal) stay consistent even if a panicking
/// thread held the guard, and the chaos soaks kill workers on purpose.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// When the service runs a vacuum between rounds (tombstone engines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VacuumPolicy {
    /// Vacuum after any round that leaves the engine's dead-row fraction
    /// ([`TombstoneStats::fraction`]) above this threshold. `None`
    /// disables automatic vacuums (explicit
    /// [`MaintenanceService::vacuum`] commands still work).
    pub max_tombstone_fraction: Option<f64>,
}

impl VacuumPolicy {
    /// Vacuum whenever the dead fraction exceeds `fraction` (0.25 = a
    /// quarter of the physical rows are garbage).
    pub fn at_fraction(fraction: f64) -> VacuumPolicy {
        VacuumPolicy {
            max_tombstone_fraction: Some(fraction),
        }
    }

    fn should(&self, stats: TombstoneStats) -> bool {
        self.max_tombstone_fraction
            .is_some_and(|t| stats.fraction() > t)
    }
}

/// What [`MaintenanceService::ingest`] does when the queue is full (see
/// the module docs on backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait for the worker to drain below capacity; shed with
    /// [`MaintenanceError::Overloaded`] once the deadline elapses.
    Block {
        /// Longest one ingest call may wait for queue space.
        deadline: Duration,
    },
    /// Shed immediately with [`MaintenanceError::Overloaded`].
    Reject,
    /// Never shed, never block: fold into the worker's pending per-table
    /// delta via the shared overflow inbox.
    CoalesceInPlace,
}

/// Admission control for [`MaintenanceService::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestPolicy {
    /// Queue high-water mark in batches: an ingest is admitted while the
    /// queue holds fewer than this many undraned batches (a multi-batch
    /// call may overshoot by its own size). `None` = unbounded.
    pub capacity: Option<usize>,
    /// What to do with an ingest that arrives at capacity.
    pub on_full: OverflowPolicy,
    /// Graceful degradation: a round starting with more queued batches
    /// than this runs degraded — policy vacuums skipped, policy snapshot
    /// cuts deferred — so the worker drains instead of housekeeping.
    pub degrade_above: Option<usize>,
}

impl Default for IngestPolicy {
    fn default() -> IngestPolicy {
        IngestPolicy {
            capacity: None,
            on_full: OverflowPolicy::Reject,
            degrade_above: None,
        }
    }
}

impl IngestPolicy {
    /// The default: no admission control, no degradation.
    pub fn unbounded() -> IngestPolicy {
        IngestPolicy::default()
    }

    /// Bounded queue with an explicit overflow behavior.
    pub fn bounded(capacity: usize, on_full: OverflowPolicy) -> IngestPolicy {
        IngestPolicy {
            capacity: Some(capacity),
            on_full,
            degrade_above: None,
        }
    }

    /// Shed ingests that arrive with `capacity` batches already queued.
    pub fn reject(capacity: usize) -> IngestPolicy {
        IngestPolicy::bounded(capacity, OverflowPolicy::Reject)
    }

    /// Block full ingests up to `deadline`, then shed.
    pub fn block(capacity: usize, deadline: Duration) -> IngestPolicy {
        IngestPolicy::bounded(capacity, OverflowPolicy::Block { deadline })
    }

    /// Route every ingest through the overflow inbox: the worker folds
    /// backlog into per-table pending deltas instead of queuing batches.
    pub fn coalesce_in_place() -> IngestPolicy {
        IngestPolicy::bounded(0, OverflowPolicy::CoalesceInPlace)
    }

    /// Enable degraded rounds above a queued-batch high-water mark.
    pub fn degrade_above(mut self, depth: usize) -> IngestPolicy {
        self.degrade_above = Some(depth);
        self
    }
}

/// Supervised self-healing for durable services (see the module docs on
/// worker death and supervision). Disabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Restart a dead worker from durable state on the next request
    /// instead of returning [`MaintenanceError::WorkerDied`].
    pub auto_respawn: bool,
    /// Base backoff slept before a respawn, scaled linearly by the
    /// number of respawns since the last clean round (capped at 1s).
    pub respawn_backoff: Duration,
    /// Worker deaths inside [`breaker_window`](Self::breaker_window)
    /// that open the circuit breaker.
    pub breaker_deaths: u32,
    /// Sliding window over which deaths are counted.
    pub breaker_window: Duration,
    /// How long an open breaker refuses respawns before allowing one
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            auto_respawn: false,
            respawn_backoff: Duration::from_millis(10),
            breaker_deaths: 3,
            breaker_window: Duration::from_secs(30),
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

impl SupervisorPolicy {
    /// No automatic respawns ([`MaintenanceService::respawn`] still
    /// works).
    pub fn disabled() -> SupervisorPolicy {
        SupervisorPolicy::default()
    }

    /// Automatic respawn with the default backoff and breaker (3 deaths
    /// in 30s open it; 250ms cooldown).
    pub fn auto() -> SupervisorPolicy {
        SupervisorPolicy {
            auto_respawn: true,
            ..SupervisorPolicy::default()
        }
    }

    /// Replace the respawn backoff base.
    pub fn respawn_backoff(mut self, backoff: Duration) -> SupervisorPolicy {
        self.respawn_backoff = backoff;
        self
    }

    /// Replace the circuit-breaker parameters.
    pub fn breaker(
        mut self,
        deaths: u32,
        window: Duration,
        cooldown: Duration,
    ) -> SupervisorPolicy {
        self.breaker_deaths = deaths.max(1);
        self.breaker_window = window;
        self.breaker_cooldown = cooldown;
        self
    }
}

/// Everything policy-shaped about one service: vacuum cadence, admission
/// control, supervision.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServicePolicies {
    /// Between-round vacuums (tombstone engines).
    pub vacuum: VacuumPolicy,
    /// Queue admission control and degradation.
    pub ingest: IngestPolicy,
    /// Automatic respawn and circuit breaker.
    pub supervisor: SupervisorPolicy,
}

impl ServicePolicies {
    /// Replace the vacuum policy.
    pub fn vacuum(mut self, policy: VacuumPolicy) -> ServicePolicies {
        self.vacuum = policy;
        self
    }

    /// Replace the ingest policy.
    pub fn ingest(mut self, policy: IngestPolicy) -> ServicePolicies {
        self.ingest = policy;
        self
    }

    /// Replace the supervisor policy.
    pub fn supervisor(mut self, policy: SupervisorPolicy) -> ServicePolicies {
        self.supervisor = policy;
        self
    }
}

/// Where and how a durable service persists its state
/// ([`MaintenanceService::spawn_durable`] /
/// [`MaintenanceService::recover`]).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the commitlog segments and snapshots.
    pub dir: PathBuf,
    /// When the worker cuts a snapshot (an explicit
    /// [`MaintenanceService::snapshot`] command always does).
    pub snapshot_policy: SnapshotPolicy,
    /// Bounded retry for transient storage faults on commitlog appends
    /// and snapshot publications.
    pub retry: RetryPolicy,
    /// Injected-crash sites for kill-and-recover testing
    /// ([`FailPoints::none`] in production).
    pub failpoints: FailPoints,
}

impl DurabilityOptions {
    /// Durability under `dir` with a snapshot every 32 rounds, the
    /// default transient-fault retry budget, and no fail points.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: dir.into(),
            snapshot_policy: SnapshotPolicy::every_rounds(32),
            retry: RetryPolicy::default(),
            failpoints: FailPoints::none(),
        }
    }

    /// Replace the snapshot policy.
    pub fn snapshot_policy(mut self, policy: SnapshotPolicy) -> DurabilityOptions {
        self.snapshot_policy = policy;
        self
    }

    /// Replace the transient-fault retry policy
    /// ([`RetryPolicy::none`] disables retries).
    pub fn retry(mut self, retry: RetryPolicy) -> DurabilityOptions {
        self.retry = retry;
        self
    }

    /// Arm fail points (tests; see [`FailPoints::from_env`]).
    pub fn failpoints(mut self, failpoints: FailPoints) -> DurabilityOptions {
        self.failpoints = failpoints;
        self
    }
}

/// What [`MaintenanceService::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryInfo {
    /// Rounds durably incorporated in the recovered engine: the snapshot
    /// epoch plus every commitlog round replayed on top. A producer
    /// re-feeding its stream resumes after this many rounds.
    pub durable_rounds: u64,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Commitlog rounds replayed through the normal round path.
    pub replayed_rounds: u64,
    /// The log ended with an intact clean-shutdown marker (no tail
    /// suspicion; any warning below is real corruption, not a crash).
    pub clean_shutdown: bool,
    /// What salvage had to tolerate: snapshots skipped for checksum
    /// failures, a torn or corrupt commitlog tail.
    pub warnings: Vec<String>,
}

/// Durability state owned by the worker thread.
struct DurableWorker {
    wal: Wal,
    store: SnapshotStore,
    policy: SnapshotPolicy,
    retry: RetryPolicy,
    failpoints: FailPoints,
    /// Index of the last round appended to the commitlog (1-based;
    /// equals the snapshot epoch right after a cut).
    round_index: u64,
    rounds_since_snapshot: u64,
    bytes_since_snapshot: u64,
}

/// Everything the handle needs to rebuild the service from disk after
/// the worker dies ([`MaintenanceService::respawn`]).
struct DurableContext {
    options: DurabilityOptions,
    config: InFineConfig,
    spec: ViewSpec,
    respawns: infine_obs::Counter,
}

/// Point-in-time service health, from [`MaintenanceService::stats`] —
/// lock-free reads of counters the handle and the worker share, safe to
/// poll from any thread at any rate.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Delta batches ingested but not yet drained into a round by the
    /// worker (the backlog admission control measures).
    pub queue_depth: usize,
    /// Delta batches drained from the queue whose round has not yet
    /// completed (work in the engine right now).
    pub in_flight: usize,
    /// Maintenance rounds completed since spawn (drained-on-shutdown
    /// rounds included).
    pub rounds_completed: u64,
    /// Wall time of the most recent round (drain + coalesce + apply +
    /// any folded vacuum). Zero until the first round completes.
    pub last_round: Duration,
    /// False once the worker thread has exited — cleanly after
    /// [`MaintenanceService::shutdown`]/drop, or by panicking.
    pub worker_alive: bool,
}

/// Counters and rendezvous state shared between the handle and the
/// worker thread.
#[derive(Default)]
struct SharedStats {
    queue_depth: AtomicI64,
    in_flight: AtomicI64,
    rounds: AtomicU64,
    last_round_nanos: AtomicU64,
    /// Overflow inbox for [`OverflowPolicy::CoalesceInPlace`]: ingest
    /// calls push here (in call order, serialized by the lock) instead
    /// of the request channel; the worker drains it every cycle.
    inbox: Mutex<Vec<Vec<DeltaRelation>>>,
    /// True while a `Kick` covering the current inbox contents is in
    /// flight (cleared by the worker under the inbox lock at drain).
    kicked: AtomicBool,
    /// Rendezvous for [`OverflowPolicy::Block`]: the worker signals
    /// `drained` after moving queued batches into a round.
    drain: Mutex<()>,
    drained: Condvar,
}

/// Preregistered service-loop metric handles. Registered at spawn time
/// on the *caller's* ambient registry (worker threads have no ambient
/// scope of their own), then moved onto the worker.
struct ServiceObs {
    queue_depth: infine_obs::Gauge,
    in_flight: infine_obs::Gauge,
    rounds: infine_obs::Counter,
    batches: infine_obs::Counter,
    coalesced: infine_obs::Counter,
    rejected: infine_obs::Counter,
    shed: infine_obs::Counter,
    degraded_rounds: infine_obs::Counter,
    breaker_state: infine_obs::Gauge,
    retry_attempts: infine_obs::Counter,
    round_seconds: infine_obs::Histogram,
    wal_appends: infine_obs::Counter,
    wal_bytes: infine_obs::Counter,
    snapshot_seconds: infine_obs::Histogram,
    respawns: infine_obs::Counter,
    publish_seconds: infine_obs::Histogram,
    prune_failures: infine_obs::Counter,
    reads: infine_obs::Counter,
    read_lag: infine_obs::Gauge,
}

impl ServiceObs {
    fn resolve() -> ServiceObs {
        // Pin the recovery-path series alongside the rest so the
        // exposition catalog is identical before and after a recovery.
        let _ = ServiceObs::recovery_handles();
        infine_obs::with_current(|r| {
            ServiceObs {
            queue_depth: r.gauge(
                "infine_service_queue_depth",
                "Delta batches ingested but not yet drained into a round.",
                &[],
            ),
            in_flight: r.gauge(
                "infine_service_in_flight",
                "Delta batches drained from the queue whose round has not yet completed.",
                &[],
            ),
            rounds: r.counter(
                "infine_service_rounds_total",
                "Maintenance rounds the service loop has completed.",
                &[],
            ),
            batches: r.counter(
                "infine_service_batches_total",
                "Delta batches accepted at ingestion (validation passed).",
                &[],
            ),
            coalesced: r.counter(
                "infine_service_coalesced_total",
                "Accepted batches folded into an already-pending batch for the same table (rounds saved by coalescing).",
                &[],
            ),
            rejected: r.counter(
                "infine_service_rejected_total",
                "Delta batches rejected at ingestion (malformed).",
                &[],
            ),
            shed: r.counter(
                "infine_service_shed_total",
                "Ingest batches shed by admission control (rejected at capacity, or blocked past the deadline).",
                &[],
            ),
            degraded_rounds: r.counter(
                "infine_service_degraded_rounds_total",
                "Rounds run degraded (policy vacuums skipped, policy snapshot cuts deferred) because the queue backlog exceeded the high-water mark.",
                &[],
            ),
            breaker_state: r.gauge(
                "infine_service_breaker_state",
                "Supervisor circuit breaker state: 0 closed, 1 open, 2 half-open.",
                &[],
            ),
            retry_attempts: r.counter(
                "infine_retry_attempts_total",
                "Transient durability faults absorbed by bounded retry (one per backoff sleep).",
                &[],
            ),
            round_seconds: r.duration_histogram(
                "infine_service_round_seconds",
                "Wall time of one service round: queue drain, coalescing, the engine round, and any folded vacuum.",
                &[],
            ),
            wal_appends: r.counter(
                "infine_wal_appends_total",
                "Round records appended (and flushed) to the write-ahead commitlog.",
                &[],
            ),
            wal_bytes: r.counter(
                "infine_wal_bytes_total",
                "Bytes appended to the write-ahead commitlog.",
                &[],
            ),
            snapshot_seconds: r.duration_histogram(
                "infine_snapshot_seconds",
                "Wall time of one snapshot cut: canonicalizing vacuum, engine freeze, atomic publish, and log rotation.",
                &[],
            ),
            respawns: r.counter(
                "infine_service_respawns_total",
                "Workers restarted from durable state after a death (MaintenanceService::respawn).",
                &[],
            ),
            publish_seconds: r.duration_histogram(
                "infine_publish_seconds",
                "Wall time to build and publish one read-path cover snapshot (MVCC-lite swap at the end of a round).",
                &[],
            ),
            prune_failures: r.counter(
                "infine_snapshot_prune_failures_total",
                "Old snapshots whose best-effort prune failed after a durable publish (retained and retried at the next cut).",
                &[],
            ),
            reads: r.counter(
                "infine_reads_total",
                "Published-cover snapshot reads served through CoverReader::current.",
                &[],
            ),
            read_lag: r.gauge(
                "infine_read_round_lag",
                "Rounds the most recent read lagged the worker's write frontier (head round minus published round).",
                &[],
            ),
        }
        })
    }

    /// The recovery-path series, registered alongside the rest of the
    /// service catalog so the exposition is identical whether or not a
    /// recovery has happened yet.
    fn recovery_handles() -> (infine_obs::Histogram, infine_obs::Counter) {
        infine_obs::with_current(|r| {
            (
                r.duration_histogram(
                    "infine_recovery_seconds",
                    "Wall time of one recovery: snapshot load, engine restore, commitlog replay, fresh snapshot.",
                    &[],
                ),
                r.counter(
                    "infine_wal_replayed_rounds_total",
                    "Commitlog rounds replayed through the normal round path during recovery.",
                    &[],
                ),
            )
        })
    }
}

/// The channel half of a service: everything that is replaced wholesale
/// when a dead worker is respawned from durable state.
struct Conn {
    requests: Sender<Request>,
    reports: Receiver<Result<MaintenanceReport, MaintenanceError>>,
    worker: Option<JoinHandle<ShardedEngine>>,
    /// Worker death is reported through `recv_report` exactly once.
    death_reported: bool,
    /// This incarnation's death has been counted by the supervisor
    /// (exactly once per incarnation, however many requests find it
    /// dead).
    death_counted: bool,
    /// Lock-free health counters shared with the worker.
    stats: Arc<SharedStats>,
}

impl Conn {
    fn worker_dead(&self) -> bool {
        self.death_reported || self.worker.as_ref().is_none_or(JoinHandle::is_finished)
    }
}

/// Circuit-breaker state machine for supervised respawns.
enum Breaker {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

/// Supervisor bookkeeping on the handle side.
struct SupervisorState {
    /// Death timestamps inside the sliding breaker window.
    deaths: Vec<Instant>,
    /// Respawns since the last clean round (scales the backoff).
    consecutive: u32,
    breaker: Breaker,
}

impl Default for SupervisorState {
    fn default() -> SupervisorState {
        SupervisorState {
            deaths: Vec::new(),
            consecutive: 0,
            breaker: Breaker::Closed,
        }
    }
}

/// Which conduit an admitted ingest takes to the worker.
enum Admission {
    /// The request channel (counted against capacity).
    Queue,
    /// The shared overflow inbox (`CoalesceInPlace`).
    Inbox,
}

/// Handle to a background sharded-maintenance loop.
///
/// ```
/// use infine_core::InFine;
/// use infine_incremental::{MaintenanceService, ShardedEngine};
/// use infine_algebra::ViewSpec;
/// use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
///
/// let mut db = Database::new();
/// db.insert(relation_from_rows(
///     "t",
///     &["k", "v"],
///     &[&[Value::Int(1), Value::Int(10)], &[Value::Int(2), Value::Int(20)]],
/// ));
/// let engine = ShardedEngine::new(InFine::default(), db, ViewSpec::base("t"), 2).unwrap();
/// let service = MaintenanceService::spawn(engine);
/// let mut batch = DeltaBatch::new();
/// batch.insert(vec![Value::Int(3), Value::Int(10)]);
/// service.ingest(vec![DeltaRelation::new("t", batch)]).unwrap();
/// let report = service.recv_report().unwrap().unwrap();
/// assert!(report.exact_provenance);
/// let engine = service.shutdown().unwrap();
/// assert_eq!(engine.database().expect("t").nrows(), 3);
/// ```
pub struct MaintenanceService {
    conn: RefCell<Conn>,
    policies: ServicePolicies,
    sup: RefCell<SupervisorState>,
    /// RecoveryInfo from the most recent *automatic* respawn, for the
    /// producer to pick up ([`MaintenanceService::take_recovery_info`]).
    auto_recovery: RefCell<Option<RecoveryInfo>>,
    /// Queue-depth gauge (the handle raises it at ingestion, the worker
    /// lowers it when it drains).
    queue_gauge: infine_obs::Gauge,
    /// Shed-batch counter (admission control lives on the handle).
    shed: infine_obs::Counter,
    /// Breaker-state gauge (0 closed / 1 open / 2 half-open).
    breaker_gauge: infine_obs::Gauge,
    /// Set when durability is on: everything respawn needs to rebuild
    /// the worker from disk.
    durable: Option<DurableContext>,
    /// The read-path publication cell. Lives on the handle (not in
    /// [`Conn`]) so it survives respawns: readers registered before a
    /// crash keep observing the recovered worker's publishes.
    covers: Arc<CoverCell>,
}

impl MaintenanceService {
    /// Move `engine` onto a worker thread and start the loop (no
    /// automatic vacuums; see [`MaintenanceService::spawn_with_policy`]).
    pub fn spawn(engine: ShardedEngine) -> MaintenanceService {
        MaintenanceService::spawn_with_policies(engine, ServicePolicies::default())
    }

    /// [`MaintenanceService::spawn`] with a vacuum policy: after each
    /// round the worker checks the engine's tombstone fraction and runs
    /// a per-shard parallel vacuum when the policy says so — between
    /// rounds, without stopping the ingest loop.
    pub fn spawn_with_policy(engine: ShardedEngine, policy: VacuumPolicy) -> MaintenanceService {
        MaintenanceService::spawn_with_policies(engine, ServicePolicies::default().vacuum(policy))
    }

    /// [`MaintenanceService::spawn`] with the full policy set: vacuum
    /// cadence, ingest admission control, supervision.
    pub fn spawn_with_policies(
        engine: ShardedEngine,
        policies: ServicePolicies,
    ) -> MaintenanceService {
        MaintenanceService::spawn_inner(engine, policies, None, None, None)
    }

    /// [`MaintenanceService::spawn_with_policy`] with crash-safe
    /// durability: every ingested round is appended (and flushed) to a
    /// write-ahead commitlog under `options.dir` *before* the engine
    /// runs it, and the engine state is snapshotted in vacuum-canonical
    /// form on the snapshot policy (or an explicit
    /// [`MaintenanceService::snapshot`] command). A baseline snapshot is
    /// cut here, so [`MaintenanceService::recover`] always has a
    /// starting point. The engine is vacuumed as part of the cut.
    pub fn spawn_durable(
        engine: ShardedEngine,
        policy: VacuumPolicy,
        options: DurabilityOptions,
    ) -> Result<MaintenanceService, MaintenanceError> {
        MaintenanceService::spawn_durable_with_policies(
            engine,
            options,
            ServicePolicies::default().vacuum(policy),
        )
    }

    /// [`MaintenanceService::spawn_durable`] with the full policy set.
    pub fn spawn_durable_with_policies(
        mut engine: ShardedEngine,
        options: DurabilityOptions,
        policies: ServicePolicies,
    ) -> Result<MaintenanceService, MaintenanceError> {
        let obs = ServiceObs::resolve();
        let context = DurableContext {
            options: options.clone(),
            config: engine.infine.config,
            spec: engine.spec.clone(),
            respawns: obs.respawns.clone(),
        };
        let store = SnapshotStore::new(&options.dir, options.failpoints.clone());
        engine.vacuum();
        let payload = persist::freeze_engine(&mut engine)?;
        let outcome = options
            .retry
            .run(
                || store.publish(0, &payload),
                |_, _| obs.retry_attempts.inc(),
            )
            .map_err(dur)?;
        obs.prune_failures.add(outcome.prune_warnings.len() as u64);
        let wal = Wal::create(&options.dir, 0, options.failpoints.clone()).map_err(dur)?;
        let durable = DurableWorker {
            wal,
            store,
            policy: options.snapshot_policy,
            retry: options.retry,
            failpoints: options.failpoints,
            round_index: 0,
            rounds_since_snapshot: 0,
            bytes_since_snapshot: 0,
        };
        Ok(MaintenanceService::spawn_inner(
            engine,
            policies,
            Some(durable),
            Some(context),
            None,
        ))
    }

    fn spawn_inner(
        engine: ShardedEngine,
        policies: ServicePolicies,
        durable: Option<DurableWorker>,
        context: Option<DurableContext>,
        cell: Option<Arc<CoverCell>>,
    ) -> MaintenanceService {
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel();
        let stats = Arc::new(SharedStats::default());
        let obs = ServiceObs::resolve();
        let queue_gauge = obs.queue_depth.clone();
        let shed = obs.shed.clone();
        let breaker_gauge = obs.breaker_state.clone();
        // Publish the bootstrap (or recovered) state before the worker
        // starts: a reader registered right after spawn always sees a
        // snapshot, never a null — at round 0, or at the durable round
        // readers resume from after a recovery. A pre-existing cell
        // (respawn) keeps its registered readers; durable_rounds is ≥
        // anything they observed, so rounds stay monotone through it.
        let initial = durable.as_ref().map_or(0, |d| d.round_index);
        let covers = match cell {
            Some(cell) => {
                cell.publish(engine.published_covers(initial));
                cell
            }
            None => Arc::new(CoverCell::new(
                engine.published_covers(initial),
                obs.reads.clone(),
                obs.read_lag.clone(),
            )),
        };
        let worker_stats = Arc::clone(&stats);
        let worker_covers = Arc::clone(&covers);
        let worker = std::thread::Builder::new()
            .name("infine-maintenance".into())
            .spawn(move || {
                run(
                    engine,
                    policies,
                    durable,
                    req_rx,
                    rep_tx,
                    worker_stats,
                    obs,
                    worker_covers,
                )
            })
            .expect("spawn maintenance worker");
        MaintenanceService {
            conn: RefCell::new(Conn {
                requests: req_tx,
                reports: rep_rx,
                worker: Some(worker),
                death_reported: false,
                death_counted: false,
                stats,
            }),
            policies,
            sup: RefCell::new(SupervisorState::default()),
            auto_recovery: RefCell::new(None),
            queue_gauge,
            shed,
            breaker_gauge,
            durable: context,
            covers,
        }
    }

    /// A wait-free read handle onto the published cover state: each
    /// [`CoverReader::current`] call returns the latest round's
    /// snapshot without locks and without queueing behind ingest.
    /// Clone the handle (one hazard slot each) to fan readers out
    /// across threads; handles keep working across [`respawn`] and
    /// automatic supervision, resuming at the recovered durable round.
    ///
    /// [`respawn`]: MaintenanceService::respawn
    pub fn reader(&self) -> CoverReader {
        CoverReader::register(Arc::clone(&self.covers))
    }

    /// Rebuild a service from the durable state under `options.dir`:
    /// load the newest valid snapshot (falling back to an older one on
    /// checksum mismatch), replay the commitlog suffix through the
    /// normal round path — tolerating a torn or corrupt tail by
    /// truncating at the damage — cut a fresh snapshot at the recovered
    /// head, and spawn the worker. `infine` and `spec` must match the
    /// original spawn (the snapshot's spec fingerprint is checked).
    ///
    /// The returned [`RecoveryInfo`] says how many rounds are durably
    /// incorporated; a producer re-feeds its stream from there.
    pub fn recover(
        options: DurabilityOptions,
        infine: InFine,
        spec: ViewSpec,
        vacuum_policy: VacuumPolicy,
    ) -> Result<(MaintenanceService, RecoveryInfo), MaintenanceError> {
        MaintenanceService::recover_with_policies(
            options,
            infine,
            spec,
            ServicePolicies::default().vacuum(vacuum_policy),
        )
    }

    /// [`MaintenanceService::recover`] with the full policy set.
    pub fn recover_with_policies(
        options: DurabilityOptions,
        infine: InFine,
        spec: ViewSpec,
        policies: ServicePolicies,
    ) -> Result<(MaintenanceService, RecoveryInfo), MaintenanceError> {
        MaintenanceService::recover_inner(options, infine, spec, policies, None)
    }

    /// [`recover_with_policies`] plus an existing publication cell to
    /// resume (respawn path): readers registered on the old incarnation
    /// see the recovered state published at `durable_rounds`.
    ///
    /// [`recover_with_policies`]: MaintenanceService::recover_with_policies
    fn recover_inner(
        options: DurabilityOptions,
        infine: InFine,
        spec: ViewSpec,
        policies: ServicePolicies,
        cell: Option<Arc<CoverCell>>,
    ) -> Result<(MaintenanceService, RecoveryInfo), MaintenanceError> {
        let t0 = Instant::now();
        let (recovery_seconds, replayed_counter) = ServiceObs::recovery_handles();
        let obs = ServiceObs::resolve();
        let vacuum_policy = policies.vacuum;
        let context = DurableContext {
            options: options.clone(),
            config: infine.config,
            spec: spec.clone(),
            respawns: obs.respawns.clone(),
        };
        let store = SnapshotStore::new(&options.dir, options.failpoints.clone());
        let loaded = store.load_newest().map_err(dur)?.ok_or_else(|| {
            MaintenanceError::Durability(format!("no valid snapshot under {:?}", options.dir))
        })?;
        let mut warnings: Vec<String> = loaded
            .skipped
            .iter()
            .map(|(epoch, why)| format!("snapshot {epoch} skipped: {why}"))
            .collect();
        let mut engine = persist::restore_engine(&loaded.payload, infine, spec)?;
        let scan = wal::scan(&options.dir, loaded.epoch).map_err(dur)?;
        warnings.extend(scan.warning.clone());

        // Replay the salvaged suffix through the normal round path,
        // re-deciding every vacuum exactly as the live run decided it:
        // explicit commands from the record flags, policy vacuums from
        // the (identical) engine state, snapshot-cut vacuums from the
        // (identically recomputed) due counters — snapshots themselves
        // are not re-published; one fresh cut below supersedes them.
        // Degraded rounds skipped their policy housekeeping, and the
        // flag in the record makes the replay skip it identically.
        let mut round_index = loaded.epoch;
        let mut rounds_since = 0u64;
        let mut bytes_since = 0u64;
        for record in &scan.rounds {
            let (deltas, flags) = persist::decode_round(&record.body)?;
            let degraded = flags & persist::ROUND_DEGRADED != 0;
            engine.apply(&deltas).map_err(|e| {
                MaintenanceError::Durability(format!(
                    "replay of round {} failed: {e}",
                    record.round_index
                ))
            })?;
            if flags & persist::ROUND_VACUUM != 0
                || (!degraded && vacuum_policy.should(engine.tombstone_stats()))
            {
                engine.vacuum();
            }
            round_index = record.round_index;
            rounds_since += 1;
            bytes_since += Wal::round_record_len(record.body.len());
            if flags & persist::ROUND_SNAPSHOT != 0
                || (!degraded && options.snapshot_policy.due(rounds_since, bytes_since))
            {
                engine.vacuum();
                rounds_since = 0;
                bytes_since = 0;
            }
            replayed_counter.inc();
        }

        // Cut a fresh snapshot at the recovered head and rotate the log:
        // recovery is idempotent and the next replay suffix starts empty.
        // Exception: when the newest on-disk snapshot loaded cleanly and
        // the log held nothing past it, the engine *is* that snapshot —
        // re-freezing it would only burn serialization and fsync time
        // (this is the common restart-after-clean-shutdown case), so
        // only the log segment is reset.
        let retain_from = if scan.rounds.is_empty() && loaded.skipped.is_empty() {
            store
                .epochs()
                .map_err(dur)?
                .first()
                .copied()
                .unwrap_or(round_index)
        } else {
            engine.vacuum();
            let payload = persist::freeze_engine(&mut engine)?;
            let outcome = options
                .retry
                .run(
                    || store.publish(round_index, &payload),
                    |_, _| obs.retry_attempts.inc(),
                )
                .map_err(dur)?;
            obs.prune_failures.add(outcome.prune_warnings.len() as u64);
            warnings.extend(
                outcome
                    .prune_warnings
                    .iter()
                    .map(|w| format!("snapshot prune: {w}")),
            );
            outcome.retained.first().copied().unwrap_or(round_index)
        };
        let wal =
            Wal::create(&options.dir, round_index, options.failpoints.clone()).map_err(dur)?;
        wal::prune_segments(&options.dir, retain_from).map_err(dur)?;

        let info = RecoveryInfo {
            durable_rounds: round_index,
            snapshot_epoch: loaded.epoch,
            replayed_rounds: scan.rounds.len() as u64,
            clean_shutdown: scan.clean_shutdown,
            warnings,
        };
        recovery_seconds.observe_duration(t0.elapsed());
        let durable = DurableWorker {
            wal,
            store,
            policy: options.snapshot_policy,
            retry: options.retry,
            failpoints: options.failpoints,
            round_index,
            rounds_since_snapshot: 0,
            bytes_since_snapshot: 0,
        };
        let service =
            MaintenanceService::spawn_inner(engine, policies, Some(durable), Some(context), cell);
        Ok((service, info))
    }

    /// Restart a dead worker from the durable state on disk (snapshot +
    /// commitlog), in place: after this returns `Ok`, the handle serves
    /// requests again. Only valid for services spawned with
    /// [`MaintenanceService::spawn_durable`] (or recovered) whose worker
    /// has died; retries the recovery a bounded number of times before
    /// giving up with the last error. Health counters restart from zero
    /// with the new worker. Bypasses the supervisor's circuit breaker —
    /// an explicit respawn is the operator overriding it.
    pub fn respawn(&mut self) -> Result<RecoveryInfo, MaintenanceError> {
        self.respawn_in_place()
    }

    /// The shared respawn machinery behind [`respawn`] (manual) and the
    /// supervisor (automatic): join the dead worker, recover from disk
    /// with this handle's policies, and splice the fresh connection into
    /// the handle.
    ///
    /// [`respawn`]: MaintenanceService::respawn
    fn respawn_in_place(&self) -> Result<RecoveryInfo, MaintenanceError> {
        const ATTEMPTS: usize = 3;
        let Some(context) = &self.durable else {
            return Err(MaintenanceError::Durability(
                "respawn requires a durable service".into(),
            ));
        };
        if !self.conn.borrow().worker_dead() {
            return Err(MaintenanceError::Durability(
                "respawn requires a dead worker (the current one is alive)".into(),
            ));
        }
        // Wait out the unwind before rebuilding from the directory the
        // dying worker still holds open (a reported death guarantees the
        // join terminates: the report channel only disconnects on exit).
        if let Some(worker) = self.conn.borrow_mut().worker.take() {
            let _ = worker.join();
        }
        let options = context.options.clone();
        let config = context.config;
        let spec = context.spec.clone();
        let respawns = context.respawns.clone();
        let mut last = None;
        for _ in 0..ATTEMPTS {
            match MaintenanceService::recover_inner(
                options.clone(),
                InFine::new(config),
                spec.clone(),
                self.policies,
                Some(Arc::clone(&self.covers)),
            ) {
                Ok((service, info)) => {
                    // Splice the fresh connection into this handle; the
                    // temporary handle drops holding the joined dead one
                    // (worker already None, so its Drop is a no-op).
                    std::mem::swap(
                        &mut *self.conn.borrow_mut(),
                        &mut *service.conn.borrow_mut(),
                    );
                    respawns.inc();
                    return Ok(info);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// The supervisor: called by every request path that finds the
    /// worker dead while [`SupervisorPolicy::auto_respawn`] is on.
    /// Counts the death (once per incarnation), drives the circuit
    /// breaker, sleeps the escalating backoff, and respawns.
    fn supervised_respawn(&self) -> Result<(), MaintenanceError> {
        let policy = self.policies.supervisor;
        let newly_dead = !std::mem::replace(&mut self.conn.borrow_mut().death_counted, true);
        {
            let mut sup = self.sup.borrow_mut();
            let now = Instant::now();
            if newly_dead {
                sup.deaths.push(now);
                let window = policy.breaker_window;
                sup.deaths.retain(|t| now.duration_since(*t) <= window);
                match sup.breaker {
                    // The half-open probe died: straight back to open.
                    Breaker::HalfOpen => {
                        sup.breaker = Breaker::Open { since: now };
                        self.breaker_gauge.set(1);
                        return Err(MaintenanceError::BreakerOpen);
                    }
                    Breaker::Closed if sup.deaths.len() as u32 >= policy.breaker_deaths => {
                        sup.breaker = Breaker::Open { since: now };
                        self.breaker_gauge.set(1);
                        return Err(MaintenanceError::BreakerOpen);
                    }
                    _ => {}
                }
            }
            if let Breaker::Open { since } = sup.breaker {
                if since.elapsed() < policy.breaker_cooldown {
                    return Err(MaintenanceError::BreakerOpen);
                }
                // Cooldown elapsed: let one probe respawn through.
            }
            sup.consecutive = sup.consecutive.saturating_add(1);
        }
        let consecutive = self.sup.borrow().consecutive;
        let backoff = policy
            .respawn_backoff
            .saturating_mul(consecutive.min(16))
            .min(Duration::from_secs(1));
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        let info = self.respawn_in_place()?;
        {
            let mut sup = self.sup.borrow_mut();
            if matches!(sup.breaker, Breaker::Open { .. }) {
                sup.breaker = Breaker::HalfOpen;
                self.breaker_gauge.set(2);
            }
        }
        *self.auto_recovery.borrow_mut() = Some(info);
        Ok(())
    }

    /// RecoveryInfo from the most recent *automatic* respawn, consumed:
    /// after a request unexpectedly succeeds against a worker the
    /// producer saw die, this says how many rounds are durable so the
    /// producer can resume its feed from there.
    pub fn take_recovery_info(&self) -> Option<RecoveryInfo> {
        self.auto_recovery.borrow_mut().take()
    }

    /// Request-path gate: `Ok` with a live worker (respawning it first
    /// when supervision allows), `Err(WorkerDied)` / `Err(BreakerOpen)`
    /// otherwise.
    fn ensure_worker(&self) -> Result<(), MaintenanceError> {
        if !self.conn.borrow().worker_dead() {
            return Ok(());
        }
        if !self.policies.supervisor.auto_respawn || self.durable.is_none() {
            return Err(MaintenanceError::WorkerDied);
        }
        self.supervised_respawn()
    }

    /// A round report arrived intact: the current incarnation is
    /// healthy. Resets the backoff escalation and closes a half-open
    /// breaker (the report receiver is replaced per respawn, so an `Ok`
    /// here is guaranteed to come from the incarnation under probe).
    fn note_clean_round(&self) {
        let mut sup = self.sup.borrow_mut();
        sup.consecutive = 0;
        if matches!(sup.breaker, Breaker::HalfOpen) {
            sup.breaker = Breaker::Closed;
            sup.deaths.clear();
            self.breaker_gauge.set(0);
        }
    }

    /// Ask the worker to cut a snapshot now (durable services; on a
    /// non-durable service this degrades to a flush). A round report is
    /// emitted. `Err(WorkerDied)` when the worker is gone.
    pub fn snapshot(&self) -> Result<(), MaintenanceError> {
        self.ensure_worker()?;
        self.send(Request::Snapshot)
    }

    /// Queue a round of delta batches. Non-blocking under the default
    /// unbounded [`IngestPolicy`]; with a capacity set, admission
    /// control applies first (see the module docs): the call may block
    /// (`Block`), shed with [`MaintenanceError::Overloaded`]
    /// (`Reject`, or `Block` past its deadline), or divert to the
    /// overflow inbox (`CoalesceInPlace`). `Err(WorkerDied)` when the
    /// worker is gone (nothing was queued).
    pub fn ingest(&self, deltas: Vec<DeltaRelation>) -> Result<(), MaintenanceError> {
        self.ensure_worker()?;
        let queued = deltas.len() as i64;
        match self.admit(queued)? {
            Admission::Queue => {
                let conn = self.conn.borrow();
                // Raise the depth BEFORE the send so a worker waking on
                // the request always observes a backlog ≥ the batches it
                // is about to drain (degraded-round detection reads this
                // before decrementing).
                conn.stats.queue_depth.fetch_add(queued, Ordering::Relaxed);
                self.queue_gauge.add(queued);
                if conn.requests.send(Request::Ingest(deltas)).is_err() {
                    conn.stats.queue_depth.fetch_sub(queued, Ordering::Relaxed);
                    self.queue_gauge.sub(queued);
                    return Err(MaintenanceError::WorkerDied);
                }
                Ok(())
            }
            Admission::Inbox => {
                let conn = self.conn.borrow();
                conn.stats.queue_depth.fetch_add(queued, Ordering::Relaxed);
                self.queue_gauge.add(queued);
                let kick = {
                    let mut inbox = relock(&conn.stats.inbox);
                    inbox.push(deltas);
                    !conn.stats.kicked.swap(true, Ordering::Relaxed)
                };
                // One Kick per inbox refill is enough; the worker clears
                // `kicked` under the inbox lock when it drains. A failed
                // send means the worker panicked (our live sender rules
                // out a clean exit) and never drained our entry, so the
                // push is withdrawn cleanly.
                if kick && conn.requests.send(Request::Kick).is_err() {
                    relock(&conn.stats.inbox).pop();
                    conn.stats.kicked.store(false, Ordering::Relaxed);
                    conn.stats.queue_depth.fetch_sub(queued, Ordering::Relaxed);
                    self.queue_gauge.sub(queued);
                    return Err(MaintenanceError::WorkerDied);
                }
                Ok(())
            }
        }
    }

    /// Admission control for one ingest of `n` batches (see
    /// [`IngestPolicy`]). Shed batches are counted on
    /// `infine_service_shed_total` and surfaced as
    /// [`MaintenanceError::Overloaded`] — never silent.
    fn admit(&self, n: i64) -> Result<Admission, MaintenanceError> {
        let policy = self.policies.ingest;
        let Some(cap) = policy.capacity else {
            return Ok(Admission::Queue);
        };
        if matches!(policy.on_full, OverflowPolicy::CoalesceInPlace) {
            return Ok(Admission::Inbox);
        }
        let stats = Arc::clone(&self.conn.borrow().stats);
        let full =
            |stats: &SharedStats| stats.queue_depth.load(Ordering::Relaxed).max(0) as usize >= cap;
        if !full(&stats) {
            return Ok(Admission::Queue);
        }
        match policy.on_full {
            OverflowPolicy::Reject => {
                self.shed.add(n as u64);
                Err(MaintenanceError::Overloaded { shed: n as usize })
            }
            OverflowPolicy::Block { deadline } => {
                let t0 = Instant::now();
                loop {
                    if !full(&stats) {
                        return Ok(Admission::Queue);
                    }
                    if self.conn.borrow().worker_dead() {
                        return Err(MaintenanceError::WorkerDied);
                    }
                    let left = deadline.saturating_sub(t0.elapsed());
                    if left.is_zero() {
                        self.shed.add(n as u64);
                        return Err(MaintenanceError::Overloaded { shed: n as usize });
                    }
                    // Short slices bound the lost-wakeup window between
                    // the depth check above and this wait.
                    let slice = left.min(Duration::from_millis(5));
                    let guard = relock(&stats.drain);
                    let _ = stats.drained.wait_timeout(guard, slice);
                }
            }
            OverflowPolicy::CoalesceInPlace => unreachable!("diverted to the inbox above"),
        }
    }

    /// Point-in-time service health: queue depth, in-flight batches,
    /// rounds completed, last-round latency, and whether the worker
    /// thread is alive. Lock-free; callable from any thread at any rate.
    pub fn stats(&self) -> ServiceStats {
        let conn = self.conn.borrow();
        ServiceStats {
            queue_depth: conn.stats.queue_depth.load(Ordering::Relaxed).max(0) as usize,
            in_flight: conn.stats.in_flight.load(Ordering::Relaxed).max(0) as usize,
            rounds_completed: conn.stats.rounds.load(Ordering::Relaxed),
            last_round: Duration::from_nanos(conn.stats.last_round_nanos.load(Ordering::Relaxed)),
            worker_alive: conn.worker.as_ref().is_some_and(|w| !w.is_finished()),
        }
    }

    /// Force a maintenance round now, even if nothing is pending (the
    /// empty round re-emits the current state with every FD untouched).
    /// `Err(WorkerDied)` when the worker is gone.
    pub fn flush(&self) -> Result<(), MaintenanceError> {
        self.ensure_worker()?;
        self.send(Request::Flush)
    }

    /// [`MaintenanceService::flush`] that also waits (up to `deadline`)
    /// for the next report and returns it. Note the report returned is
    /// the *next* one — with rounds already queued it may describe an
    /// earlier round, not the flush itself; producers that need strict
    /// pairing should drain reports before calling.
    /// `Err(`[`MaintenanceError::Timeout`]`)` when nothing arrives in
    /// time.
    pub fn flush_deadline(
        &self,
        deadline: Duration,
    ) -> Result<MaintenanceReport, MaintenanceError> {
        self.flush()?;
        match self.recv_report_timeout(deadline) {
            Some(Ok(report)) => Ok(report),
            Some(Err(e)) => Err(e),
            None => Err(MaintenanceError::WorkerDied),
        }
    }

    /// Run a vacuum pass between rounds (after draining whatever is
    /// pending), regardless of the policy threshold. A round report is
    /// always emitted, carrying the pass's accounting in
    /// [`MaintenanceReport::vacuum`]. `Err(WorkerDied)` when the worker
    /// is gone.
    pub fn vacuum(&self) -> Result<(), MaintenanceError> {
        self.ensure_worker()?;
        self.send(Request::Vacuum)
    }

    /// Shared request path: a finished worker (panicked, or somehow
    /// exited) can never process the request, so refuse up front; a
    /// failing send (receiver dropped mid-unwind) means the same thing.
    fn send(&self, req: Request) -> Result<(), MaintenanceError> {
        let conn = self.conn.borrow();
        if conn.worker.as_ref().is_none_or(JoinHandle::is_finished) {
            return Err(MaintenanceError::WorkerDied);
        }
        conn.requests
            .send(req)
            .map_err(|_| MaintenanceError::WorkerDied)
    }

    /// Block until the next round report (or ingestion error) arrives.
    /// `None` once the worker has exited cleanly (after
    /// [`MaintenanceService::shutdown`]-less drop) and the channel
    /// drained. If the worker *died* (panicked), the disconnect is
    /// reported as one final `Err(`[`MaintenanceError::WorkerDied`]`)`,
    /// then `None`.
    pub fn recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        let received = self.conn.borrow().reports.recv();
        match received {
            Ok(r) => {
                if r.is_ok() {
                    self.note_clean_round();
                }
                Some(r)
            }
            Err(_) => self.report_death(),
        }
    }

    /// [`MaintenanceService::recv_report`] bounded by a deadline:
    /// `Some(Err(`[`MaintenanceError::Timeout`]`))` when no report lands
    /// in time (the worker may be stalled mid-round, or simply idle —
    /// check [`MaintenanceService::stats`] to tell which).
    pub fn recv_report_timeout(
        &self,
        deadline: Duration,
    ) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        let received = self.conn.borrow().reports.recv_timeout(deadline);
        match received {
            Ok(r) => {
                if r.is_ok() {
                    self.note_clean_round();
                }
                Some(r)
            }
            Err(RecvTimeoutError::Timeout) => Some(Err(MaintenanceError::Timeout)),
            Err(RecvTimeoutError::Disconnected) => self.report_death(),
        }
    }

    /// Non-blocking report poll (same death contract as
    /// [`MaintenanceService::recv_report`]).
    pub fn try_recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        let received = self.conn.borrow().reports.try_recv();
        match received {
            Ok(r) => {
                if r.is_ok() {
                    self.note_clean_round();
                }
                Some(r)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => self.report_death(),
        }
    }

    /// A disconnected report channel while this handle is still alive
    /// means the worker exited on its own — it panicked (the only clean
    /// exit is our own sender drop in shutdown/Drop). Surface that once.
    fn report_death(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        if std::mem::replace(&mut self.conn.borrow_mut().death_reported, true) {
            None
        } else {
            Some(Err(MaintenanceError::WorkerDied))
        }
    }

    /// Stop the loop (after a final round draining any pending batches)
    /// and get the engine back for inspection. Unread reports are
    /// discarded with the handle — receive them first if you need them;
    /// the engine's state reflects every drained round either way.
    /// `Err(WorkerDied)` when the worker panicked instead of finishing.
    pub fn shutdown(self) -> Result<ShardedEngine, MaintenanceError> {
        let worker = {
            let mut conn = self.conn.borrow_mut();
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut conn.requests, dangling));
            conn.worker.take().expect("shutdown called once")
        };
        worker.join().map_err(|_| MaintenanceError::WorkerDied)
    }

    /// [`MaintenanceService::shutdown`] bounded by a deadline: signal
    /// shutdown, then wait at most `deadline` for the worker to finish
    /// its final drain. On timeout the worker is *detached* — it keeps
    /// draining and (for durable services) still marks the log cleanly
    /// shut down, but the engine is unrecoverable from this handle —
    /// and `Err(`[`MaintenanceError::Timeout`]`)` is returned.
    pub fn shutdown_deadline(self, deadline: Duration) -> Result<ShardedEngine, MaintenanceError> {
        {
            let mut conn = self.conn.borrow_mut();
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut conn.requests, dangling));
        }
        let t0 = Instant::now();
        loop {
            let finished = self
                .conn
                .borrow()
                .worker
                .as_ref()
                .is_none_or(JoinHandle::is_finished);
            if finished {
                let worker = self.conn.borrow_mut().worker.take();
                return match worker {
                    Some(w) => w.join().map_err(|_| MaintenanceError::WorkerDied),
                    None => Err(MaintenanceError::WorkerDied),
                };
            }
            if t0.elapsed() >= deadline {
                // Dropping the JoinHandle detaches the still-draining
                // worker; this handle's Drop then has nothing to join.
                drop(self.conn.borrow_mut().worker.take());
                return Err(MaintenanceError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Test-only worker killer (panics the worker thread).
    #[cfg(test)]
    fn poison(&self) {
        self.conn.borrow().requests.send(Request::Poison).unwrap();
    }

    /// Test-only liveness probe, bypassing the death bookkeeping.
    #[cfg(test)]
    fn worker_finished_now(&self) -> bool {
        self.conn
            .borrow()
            .worker
            .as_ref()
            .is_none_or(JoinHandle::is_finished)
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        let worker = {
            let mut conn = self.conn.borrow_mut();
            // Disconnect the request channel so the loop exits, then wait
            // for the final round.
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut conn.requests, dangling));
            conn.worker.take()
        };
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

/// The worker loop: block for work, drain the queue and the overflow
/// inbox, coalesce, run one round (logged first when durable), vacuum by
/// policy/command, cut snapshots, repeat. A disconnected request channel
/// ends the loop after a final round for whatever is still pending; a
/// durable worker then marks the log cleanly shut down.
#[allow(clippy::too_many_arguments)]
fn run(
    mut engine: ShardedEngine,
    policies: ServicePolicies,
    mut durable: Option<DurableWorker>,
    requests: Receiver<Request>,
    reports: Sender<Result<MaintenanceReport, MaintenanceError>>,
    stats: Arc<SharedStats>,
    obs: ServiceObs,
    covers: Arc<CoverCell>,
) -> ShardedEngine {
    let vacuum_policy = policies.vacuum;
    // The round id stamped on read-path publishes. Durable services use
    // the WAL round index (so recovered readers resume exactly where a
    // producer resumes); non-durable services count completed rounds
    // from zero with the same advance point.
    let round_counter = std::cell::Cell::new(durable.as_ref().map_or(0, |d| d.round_index));
    // One round's bookkeeping: observe latency, bump the shared health
    // counters, forward the report.
    let finish_round = |result: Result<MaintenanceReport, MaintenanceError>, t0: Instant| {
        let elapsed = t0.elapsed();
        obs.round_seconds.observe_duration(elapsed);
        obs.rounds.inc();
        stats.rounds.fetch_add(1, Ordering::Relaxed);
        stats
            .last_round_nanos
            .store(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let _ = reports.send(result);
    };

    // Publish the engine's covers for wait-free readers, stamped with
    // the round they are current as of. Pure clones of read-time caches
    // (the sharded engine's merged per-label covers) — no recomputation.
    let publish_covers = |engine: &ShardedEngine| {
        let t0 = Instant::now();
        covers.publish(engine.published_covers(round_counter.get()));
        obs.publish_seconds.observe_duration(t0.elapsed());
    };

    // One full round, write-ahead: log the batch set, apply it, vacuum
    // (commanded or by policy), report, then cut a snapshot when due.
    // The round is sorted by target so the live apply order equals the
    // replay order (`decode_round` yields the codec's name-sorted form).
    // A degraded round logs its flag, skips policy vacuums, and defers
    // policy snapshot cuts; explicit commands are always honored.
    let run_round = |engine: &mut ShardedEngine,
                     durable: &mut Option<DurableWorker>,
                     mut round: Vec<DeltaRelation>,
                     vacuum: bool,
                     snapshot_cmd: bool,
                     degraded: bool,
                     round_t0: Instant| {
        round.sort_by(|a, b| a.target.cmp(&b.target));
        if degraded {
            obs.degraded_rounds.inc();
        }
        if let Some(d) = durable.as_mut() {
            let mut flags = 0u8;
            if vacuum {
                flags |= persist::ROUND_VACUUM;
            }
            if snapshot_cmd {
                flags |= persist::ROUND_SNAPSHOT;
            }
            if degraded {
                flags |= persist::ROUND_DEGRADED;
            }
            let body = persist::encode_round(&round, flags);
            let retry = d.retry;
            let next = d.round_index + 1;
            match retry.run(
                || d.wal.append_round(next, &body),
                |_, _| obs.retry_attempts.inc(),
            ) {
                Ok(bytes) => {
                    obs.wal_appends.inc();
                    obs.wal_bytes.add(bytes);
                    d.round_index += 1;
                    d.rounds_since_snapshot += 1;
                    d.bytes_since_snapshot += bytes;
                    round_counter.set(d.round_index);
                }
                Err(e) => {
                    // The engine must never run ahead of the log: an
                    // unloggable round is DROPPED, not applied, and the
                    // producer re-derives its feed like any rejected
                    // ingest. Round counters stay put — no round ran.
                    let _ = reports.send(Err(dur(e)));
                    return;
                }
            }
        } else {
            // Same advance point as the durable path: the round is now
            // committed to run (nothing after this can drop it).
            round_counter.set(round_counter.get() + 1);
        }
        let mut result = engine.apply(&round);
        // Vacuum between rounds: commanded, or by policy threshold (the
        // latter suppressed while degraded — draining beats grooming).
        // The ingest loop keeps running — producers only ever see the
        // pass as accounting on a round report.
        if vacuum || (!degraded && vacuum_policy.should(engine.tombstone_stats())) {
            let stats = engine.vacuum();
            match result.as_mut() {
                Ok(report) => report.vacuum = Some(stats),
                Err(_) => {
                    // The failed round still surfaces as its own Err;
                    // the pass is then acknowledged on an empty
                    // follow-up round, keeping the documented "a
                    // vacuum is always reported" contract (consumers
                    // drain until they see `report.vacuum`).
                    let _ = reports.send(result);
                    result = engine.apply(&[]).map(|mut report| {
                        report.vacuum = Some(stats);
                        report
                    });
                }
            }
        }
        if let Some(d) = durable.as_ref() {
            // Logged and applied, report not yet sent — the crash that
            // makes recovery replay an already-run round.
            d.failpoints.hit(ROUND_COMMIT);
        }
        finish_round(result, round_t0);
        publish_covers(engine);
        let Some(d) = durable.as_mut() else { return };
        // A degraded round defers the policy cut — counters keep
        // accumulating and the first non-degraded round cuts — exactly
        // what replay decides from the logged flag.
        if !snapshot_cmd
            && (degraded
                || !d
                    .policy
                    .due(d.rounds_since_snapshot, d.bytes_since_snapshot))
        {
            return;
        }
        // Counters reset on ENTRY, publish or fail: replay recomputes
        // due-points from the same counters and must reach the same
        // decisions whether or not the publish below survived.
        d.rounds_since_snapshot = 0;
        d.bytes_since_snapshot = 0;
        let snap_t0 = Instant::now();
        let retry = d.retry;
        let cut = (|| -> Result<(), MaintenanceError> {
            engine.vacuum();
            let payload = persist::freeze_engine(engine)?;
            let outcome = retry
                .run(
                    || d.store.publish(d.round_index, &payload),
                    |_, _| obs.retry_attempts.inc(),
                )
                .map_err(dur)?;
            obs.prune_failures.add(outcome.prune_warnings.len() as u64);
            let retain_from = outcome.retained.first().copied().unwrap_or(d.round_index);
            d.wal.rotate(d.round_index, retain_from).map_err(dur)?;
            Ok(())
        })();
        obs.snapshot_seconds.observe_duration(snap_t0.elapsed());
        match cut {
            // The cut's canonicalizing vacuum compacted the engine;
            // re-publish the same round in vacuum-canonical form so
            // reader-visible tombstone stats match the durable state.
            Ok(()) => publish_covers(engine),
            // A failed cut is survivable — the previous snapshot plus
            // the still-growing log cover everything — but loud.
            Err(e) => {
                let _ = reports.send(Err(e));
            }
        }
    };

    let mut pending: HashMap<String, DeltaBatch> = HashMap::new();

    // Move one cycle's batches — this cycle's channel ingests plus
    // everything in the overflow inbox — from "queued" to "in flight"
    // and fold them into the pending per-table state. Returns how many
    // batches moved (settled back off `in_flight` after the round).
    let drain_batches = |engine: &ShardedEngine,
                         pending: &mut HashMap<String, DeltaBatch>,
                         ingests: Vec<Vec<DeltaRelation>>|
     -> i64 {
        let all: Vec<Vec<DeltaRelation>> = {
            let mut inbox = relock(&stats.inbox);
            // Clearing `kicked` under the same lock producers push under
            // guarantees no refill is missed: a push after this drain
            // sees kicked == false and sends a fresh Kick.
            stats.kicked.store(false, Ordering::Relaxed);
            let mut all: Vec<Vec<DeltaRelation>> = inbox.drain(..).collect();
            // Channel ingests and inbox entries never mix (the conduit
            // is fixed by the ingest policy), so appending preserves
            // ingestion order for whichever conduit is in use.
            all.extend(ingests);
            all
        };
        let mut drained = 0i64;
        for deltas in all {
            let n = deltas.len() as i64;
            drained += n;
            // Credit `in_flight` BEFORE debiting `queue_depth`: a
            // concurrent stats() sample (which reads depth first, then
            // in-flight) may double-count a batch mid-hand-off but can
            // never miss it — momentary overcounts are honest "work
            // exists", an undercount would read as a drained service.
            stats.in_flight.fetch_add(n, Ordering::Relaxed);
            obs.in_flight.add(n);
            stats.queue_depth.fetch_sub(n, Ordering::Relaxed);
            obs.queue_depth.sub(n);
            // One rejected batch drops the REST of this ingest request
            // too: every later batch addresses a stream state that
            // assumed the rejected one applied, so folding it in would
            // silently hit the wrong rows. The producer sees the `Err`
            // report and re-derives its feed from the engine state.
            for d in deltas {
                match coalesce_into(engine, pending, d) {
                    Ok(folded) => {
                        obs.batches.inc();
                        if folded {
                            obs.coalesced.inc();
                        }
                    }
                    Err(e) => {
                        obs.rejected.inc();
                        let _ = reports.send(Err(e));
                        break;
                    }
                }
            }
        }
        if drained > 0 {
            // Wake any producer blocked on admission: queue space freed.
            drop(relock(&stats.drain));
            stats.drained.notify_all();
        }
        drained
    };
    let settle_in_flight = |drained: i64| {
        if drained > 0 {
            stats.in_flight.fetch_sub(drained, Ordering::Relaxed);
            obs.in_flight.sub(drained);
        }
    };

    while let Ok(first) = requests.recv() {
        let round_t0 = Instant::now();
        // The backlog this round starts with — read BEFORE the drain
        // decrements it (producers raise it before sending, so batches
        // about to be drained are always counted).
        let backlog = stats.queue_depth.load(Ordering::Relaxed).max(0) as usize;
        let mut queued = vec![first];
        while let Ok(more) = requests.try_recv() {
            queued.push(more);
        }
        let mut flush = false;
        let mut vacuum = false;
        let mut snapshot = false;
        let mut ingests: Vec<Vec<DeltaRelation>> = Vec::new();
        for req in queued {
            match req {
                Request::Ingest(deltas) => ingests.push(deltas),
                Request::Kick => {}
                Request::Flush => flush = true,
                Request::Vacuum => vacuum = true,
                Request::Snapshot => snapshot = true,
                #[cfg(test)]
                Request::Poison => panic!("test-injected worker panic"),
            }
        }
        let drained = drain_batches(&engine, &mut pending, ingests);
        let degraded = policies
            .ingest
            .degrade_above
            .is_some_and(|high| backlog > high);
        if !pending.is_empty() || flush || vacuum || snapshot {
            let round: Vec<DeltaRelation> = pending
                .drain()
                .map(|(target, batch)| DeltaRelation::new(target, batch))
                .collect();
            // The write frontier moved: readers lag until the publish.
            covers.note_head(round_counter.get() + 1);
            run_round(
                &mut engine,
                &mut durable,
                round,
                vacuum,
                snapshot,
                degraded,
                round_t0,
            );
        }
        settle_in_flight(drained);
    }
    // Final drain: the channel is disconnected (all its ingests were
    // received above), but the inbox may hold entries whose Kick raced
    // the shutdown — absorb them so every admitted batch is applied.
    let round_t0 = Instant::now();
    let drained = drain_batches(&engine, &mut pending, Vec::new());
    if !pending.is_empty() {
        let round: Vec<DeltaRelation> = pending
            .drain()
            .map(|(target, batch)| DeltaRelation::new(target, batch))
            .collect();
        covers.note_head(round_counter.get() + 1);
        run_round(
            &mut engine,
            &mut durable,
            round,
            false,
            false,
            false,
            round_t0,
        );
    }
    settle_in_flight(drained);
    if let Some(d) = durable.as_mut() {
        // Everything reported is logged; tell the next recovery it may
        // treat ANY tail damage as real corruption, not a crash artifact.
        let _ = d.wal.mark_clean_shutdown();
    }
    engine
}

/// Validate one incoming batch against the logical stream state and fold
/// it into the pending per-table batch; `Ok(true)` when it was folded
/// into an already-pending batch for the same table (a round saved by
/// coalescing). Fully fallible: nothing here — including the
/// [`DeltaBatch::try_then`] composition — can panic on malformed input,
/// so a bad batch can never take the worker down.
fn coalesce_into(
    engine: &ShardedEngine,
    pending: &mut HashMap<String, DeltaBatch>,
    delta: DeltaRelation,
) -> Result<bool, MaintenanceError> {
    let Some(table) = engine.database().get(&delta.target) else {
        return Err(MaintenanceError::UnknownTable(delta.target));
    };
    if let Some(bad) = delta
        .batch
        .inserts
        .iter()
        .find(|r| r.len() != table.ncols())
    {
        return Err(MaintenanceError::BadBatch(format!(
            "insert arity {} does not match {:?} ({} columns)",
            bad.len(),
            delta.target,
            table.ncols()
        )));
    }
    let base_nrows = table.live_rows();
    let logical_nrows = match pending.get(&delta.target) {
        None => base_nrows,
        Some(p) => {
            let distinct_deletes: std::collections::HashSet<u32> =
                p.deletes.iter().copied().collect();
            base_nrows - distinct_deletes.len() + p.inserts.len()
        }
    };
    if let Some(&row) = delta
        .batch
        .deletes
        .iter()
        .find(|&&r| r as usize >= logical_nrows)
    {
        return Err(MaintenanceError::BadBatch(format!(
            "delete of row {row} out of range for {:?} ({logical_nrows} rows in the pending state)",
            delta.target
        )));
    }
    match pending.remove(&delta.target) {
        None => {
            pending.insert(delta.target, delta.batch);
            Ok(false)
        }
        Some(p) => match p.try_then(&delta.batch, base_nrows) {
            Ok(folded) => {
                pending.insert(delta.target, folded);
                Ok(true)
            }
            Err(msg) => Err(MaintenanceError::BadBatch(msg)),
        },
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeletePolicy;
    use crate::shard::InsertPolicy;
    use crate::MaintenanceEngine;
    use infine_algebra::ViewSpec;
    use infine_core::InFine;
    use infine_relation::{relation_from_rows, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    fn tombstone_engine() -> ShardedEngine {
        ShardedEngine::with_options(
            InFine::default(),
            db(),
            view(),
            2,
            InsertPolicy::default(),
            DeletePolicy::Tombstone,
            crate::ViewMode::default(),
        )
        .unwrap()
    }

    #[test]
    fn service_round_trips_and_matches_full_discovery() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        assert!(report.vacuum.is_none());
        let engine = service.shutdown().unwrap();
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        assert_eq!(report.triples, fresh.triples);
    }

    #[test]
    fn sequential_ingests_for_one_table_coalesce_like_sequential_rounds() {
        // Reference: an unsharded engine fed the two batches as two
        // rounds. The service receives both in one ingest call, coalesces
        // them into one round, and must land in the same state.
        let mut reference = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut b1 = DeltaBatch::new();
        b1.delete(0)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)]);
        // b2 addresses the post-b1 state: rid 3 is the inserted row.
        let mut b2 = DeltaBatch::new();
        b2.delete(3)
            .insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        reference
            .apply_one(&DeltaRelation::new("p", b1.clone()))
            .unwrap();
        reference
            .apply_one(&DeltaRelation::new("p", b2.clone()))
            .unwrap();

        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.report().triples, reference.report().triples);
        assert_eq!(
            report.cover.to_sorted_vec(),
            reference.fd_set().to_sorted_vec()
        );
        // Row values agree (codes may differ through coalescing).
        let a = reference.database().expect("p");
        let b = engine.database().expect("p");
        assert_eq!(a.nrows(), b.nrows());
        for r in 0..a.nrows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn malformed_ingest_surfaces_as_error_without_poisoning() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        service.ingest(vec![DeltaRelation::new("p", bad)]).unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // The loop is still alive and healthy.
        let mut ok = DeltaBatch::new();
        ok.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        service.ingest(vec![DeltaRelation::new("p", ok)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
    }

    #[test]
    fn malformed_coalesced_batch_cannot_kill_the_worker() {
        // A second batch whose deletes are in range of the *base* table
        // but out of range of the coalesced intermediate state: with the
        // panicking `then` this killed the worker; `try_then` turns it
        // into an Err report and the loop survives.
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b1 = DeltaBatch::new();
        b1.delete(0).delete(1).delete(2); // p: 4 rows → 1 row pending
        let mut b2 = DeltaBatch::new();
        b2.delete(2); // in range of base p (4 rows), not of pending (1 row)
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // b1 alone was accepted and the worker is alive: the round ran.
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 1);
    }

    #[test]
    fn flush_emits_an_untouched_round() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let held = engine.fd_set().len();
        let service = MaintenanceService::spawn(engine);
        service.flush().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert_eq!(report.count_status(crate::FdStatus::Untouched), held,);
        service.shutdown().unwrap();
    }

    #[test]
    fn pending_batches_drain_on_shutdown() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(8), Value::str("d"), Value::Int(4)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn worker_death_surfaces_as_errors_not_hangs_or_panics() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service.poison();
        // The death is reported exactly once, then the stream ends.
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        assert!(service.recv_report().is_none());
        // Wait out the unwind so the request-side observations below are
        // deterministic (the report channel disconnects mid-unwind).
        while !service.worker_finished_now() {
            std::thread::yield_now();
        }
        // Every request path errors promptly instead of hanging.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        assert!(matches!(
            service.ingest(vec![DeltaRelation::new("p", b)]),
            Err(MaintenanceError::WorkerDied)
        ));
        assert!(matches!(service.flush(), Err(MaintenanceError::WorkerDied)));
        assert!(matches!(
            service.vacuum(),
            Err(MaintenanceError::WorkerDied)
        ));
        // ... and shutdown reports the death instead of panicking.
        assert!(matches!(
            service.shutdown(),
            Err(MaintenanceError::WorkerDied)
        ));
    }

    #[test]
    fn explicit_vacuum_command_runs_between_rounds() {
        let service = MaintenanceService::spawn(tombstone_engine());
        let mut b = DeltaBatch::new();
        b.delete(0).delete(2);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.vacuum.is_none()); // no policy, no command yet
        service.vacuum().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("vacuum command reports its pass");
        assert!(stats.rows_dropped > 0);
        // The loop keeps serving afterwards.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(7), Value::str("c"), Value::Int(2)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn vacuum_policy_triggers_automatically() {
        let service = MaintenanceService::spawn_with_policy(
            tombstone_engine(),
            VacuumPolicy::at_fraction(0.2),
        );
        // Delete half of p: the fragment garbage crosses the threshold.
        let mut b = DeltaBatch::new();
        b.delete(0).delete(1);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("policy-triggered vacuum");
        assert!(stats.rows_dropped >= 2);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "infine-svc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn insert_p(v: i64) -> Vec<DeltaRelation> {
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(v), Value::str("c"), Value::Int(2)]);
        vec![DeltaRelation::new("p", b)]
    }

    #[test]
    fn durable_service_recovers_after_clean_shutdown() {
        let dir = tmpdir("clean");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(5), Value::str("z")]);
        service.ingest(vec![DeltaRelation::new("q", b)]).unwrap();
        service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        let expect = engine.report().triples.clone();

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        assert!(info.clean_shutdown);
        assert_eq!(info.snapshot_epoch, 0);
        assert_eq!(info.replayed_rounds, 2);
        assert_eq!(info.durable_rounds, 2);
        assert!(info.warnings.is_empty(), "{:?}", info.warnings);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.report().triples, expect);
        let fresh = InFine::default()
            .discover(recovered.database(), recovered.spec())
            .unwrap();
        assert_eq!(recovered.report().triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_commit_crash_respawns_without_losing_the_durable_round() {
        let dir = tmpdir("commit-crash");
        let mut fp = FailPoints::none();
        fp.arm(ROUND_COMMIT, 1);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).failpoints(fp),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        // The worker dies after logging + applying, before the report.
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        let info = service.respawn().unwrap();
        // The crashed round was already durable: nothing to re-feed.
        assert_eq!(info.durable_rounds, 1);
        assert_eq!(info.replayed_rounds, 1);
        assert!(!info.clean_shutdown);
        service.ingest(insert_p(6)).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 6);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(report.triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_append_crash_drops_exactly_the_unlogged_round() {
        let dir = tmpdir("append-crash");
        let mut fp = FailPoints::none();
        fp.arm(infine_durability::failpoint::WAL_APPEND, 2);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).failpoints(fp),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        service.ingest(insert_p(6)).unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        let info = service.respawn().unwrap();
        // Round 2 never reached the log: the producer re-feeds it.
        assert_eq!(info.durable_rounds, 1);
        service.ingest(insert_p(6)).unwrap();
        service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 6);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_policy_cuts_and_recovery_replays_only_the_suffix() {
        let dir = tmpdir("snap-policy");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(2)),
        )
        .unwrap();
        for v in [5, 6, 7] {
            service.ingest(insert_p(v)).unwrap();
            service.recv_report().unwrap().unwrap();
        }
        let engine = service.shutdown().unwrap();
        let expect = engine.report().triples.clone();

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(2)),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        // The round-2 snapshot took; only round 3 replays from the log.
        assert_eq!(info.snapshot_epoch, 2);
        assert_eq!(info.replayed_rounds, 1);
        assert_eq!(info.durable_rounds, 3);
        assert!(info.clean_shutdown);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.report().triples, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_snapshot_command_advances_the_recovery_epoch() {
        let dir = tmpdir("snap-cmd");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        service.snapshot().unwrap();
        service.recv_report().unwrap().unwrap();
        service.ingest(insert_p(6)).unwrap();
        service.recv_report().unwrap().unwrap();
        drop(service); // shutdown-less drop still drains + marks clean

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        // The snapshot command ran as round 2 (an empty flush round).
        assert_eq!(info.snapshot_epoch, 2);
        assert_eq!(info.replayed_rounds, 1);
        assert_eq!(info.durable_rounds, 3);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.database().expect("p").nrows(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn respawn_refuses_live_workers_and_non_durable_services() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut plain = MaintenanceService::spawn(engine);
        assert!(matches!(
            plain.respawn(),
            Err(MaintenanceError::Durability(_))
        ));
        plain.shutdown().unwrap();

        let dir = tmpdir("respawn-live");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        assert!(matches!(
            service.respawn(),
            Err(MaintenanceError::Durability(_))
        ));
        service.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn wait_dead(service: &MaintenanceService) {
        let t0 = Instant::now();
        while !service.worker_finished_now() {
            assert!(t0.elapsed() < Duration::from_secs(5), "worker never died");
            std::thread::yield_now();
        }
    }

    #[test]
    fn reject_policy_sheds_at_capacity_and_counts() {
        let registry = infine_obs::Registry::scoped();
        let _scope = registry.enter();
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let policies = ServicePolicies::default().ingest(IngestPolicy::reject(0));
        let service = MaintenanceService::spawn_with_policies(engine, policies);
        match service.ingest(insert_p(5)) {
            Err(MaintenanceError::Overloaded { shed }) => assert_eq!(shed, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Nothing was queued, and the shed work is accounted for.
        assert_eq!(service.stats().queue_depth, 0);
        assert_eq!(
            registry.snapshot().get("infine_service_shed_total"),
            Some(1.0)
        );
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 4);
    }

    #[test]
    fn block_policy_sheds_after_the_deadline() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let deadline = Duration::from_millis(40);
        let policies = ServicePolicies::default().ingest(IngestPolicy::block(0, deadline));
        let service = MaintenanceService::spawn_with_policies(engine, policies);
        let t0 = Instant::now();
        match service.ingest(insert_p(5)) {
            Err(MaintenanceError::Overloaded { shed }) => assert_eq!(shed, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(t0.elapsed() >= deadline, "shed before the deadline");
        service.shutdown().unwrap();
    }

    #[test]
    fn block_policy_waits_for_drain_then_admits() {
        let dir = tmpdir("block-drain");
        let mut fp = FailPoints::none();
        fp.arm_delay(infine_durability::failpoint::WAL_APPEND, 1, 1, 150);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let policies =
            ServicePolicies::default().ingest(IngestPolicy::block(1, Duration::from_secs(10)));
        let service = MaintenanceService::spawn_durable_with_policies(
            engine,
            DurabilityOptions::new(&dir).failpoints(fp),
            policies,
        )
        .unwrap();
        // First batch drains immediately and stalls in the delayed WAL
        // append: in flight, not queued.
        service.ingest(insert_p(5)).unwrap();
        let t0 = Instant::now();
        while service.stats().in_flight != 1 {
            assert!(t0.elapsed() < Duration::from_secs(5), "never saw in-flight");
            std::thread::yield_now();
        }
        assert_eq!(service.stats().queue_depth, 0);
        // Second batch fills the queue; the third must block on the
        // condvar until the worker drains, then be admitted (the 10s
        // deadline far outlives the 150ms stall).
        service.ingest(insert_p(6)).unwrap();
        service.ingest(insert_p(7)).unwrap();
        service.recv_report().unwrap().unwrap();
        service.recv_report().unwrap().unwrap();
        // Queue and in-flight both settle to zero: no gauge drift.
        let t0 = Instant::now();
        loop {
            let stats = service.stats();
            if stats.queue_depth == 0 && stats.in_flight == 0 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "stats never settled");
            std::thread::yield_now();
        }
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite of the queue/in-flight hand-off fix: the drain credits
    /// `in_flight` BEFORE debiting `queue_depth`, so a stats() sample
    /// taken any time before a round's report lands counts the batch in
    /// at least one bucket (the old order had a window where a mid-drain
    /// sample saw it in neither). The slow-WAL failpoint widens the
    /// in-flight phase so the samples straddle the hand-off.
    #[test]
    fn stats_sample_never_undercounts_mid_drain() {
        let dir = tmpdir("stats-mid-drain");
        let mut fp = FailPoints::none();
        fp.arm_delay(infine_durability::failpoint::WAL_APPEND, 1, 3, 40);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable_with_policies(
            engine,
            DurabilityOptions::new(&dir).failpoints(fp),
            ServicePolicies::default(),
        )
        .unwrap();
        for row in [5, 6, 7] {
            service.ingest(insert_p(row)).unwrap();
            let t0 = Instant::now();
            loop {
                // Sample BEFORE polling the report: a `None` poll proves
                // the report had not been sent at sample time, so the
                // batch was still queued or in flight then.
                let stats = service.stats();
                match service.try_recv_report() {
                    Some(r) => {
                        r.unwrap();
                        break;
                    }
                    None => assert!(
                        stats.queue_depth + stats.in_flight >= 1,
                        "unfinished batch invisible to stats \
                         (queue_depth + in_flight == 0 before its report)"
                    ),
                }
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "round never reported"
                );
                std::hint::spin_loop();
            }
        }
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesce_in_place_folds_backlog_and_matches_discovery() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let policies = ServicePolicies::default().ingest(IngestPolicy::coalesce_in_place());
        let service = MaintenanceService::spawn_with_policies(engine, policies);
        for v in 5..9 {
            service.ingest(insert_p(v)).unwrap();
        }
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 8);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn supervisor_breaker_opens_probes_and_closes() {
        let registry = infine_obs::Registry::scoped();
        let _scope = registry.enter();
        let dir = tmpdir("breaker");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let policies = ServicePolicies::default().supervisor(
            SupervisorPolicy::auto()
                .respawn_backoff(Duration::ZERO)
                .breaker(2, Duration::from_secs(30), Duration::from_millis(100)),
        );
        let service = MaintenanceService::spawn_durable_with_policies(
            engine,
            DurabilityOptions::new(&dir),
            policies,
        )
        .unwrap();

        // Death 1: the next request transparently respawns the worker
        // and leaves the resume point for the producer to pick up.
        service.poison();
        wait_dead(&service);
        service.flush().unwrap();
        let info = service.take_recovery_info().expect("auto-respawn info");
        assert_eq!(info.durable_rounds, 0);
        service.recv_report().unwrap().unwrap();
        assert!(service.take_recovery_info().is_none(), "info is consumed");

        // Death 2 reaches the threshold: the breaker opens and stays
        // open for the cooldown, refusing every request.
        service.poison();
        wait_dead(&service);
        assert!(matches!(
            service.flush(),
            Err(MaintenanceError::BreakerOpen)
        ));
        assert!(matches!(
            service.flush(),
            Err(MaintenanceError::BreakerOpen)
        ));
        assert_eq!(
            registry.snapshot().get("infine_service_breaker_state"),
            Some(1.0)
        );

        // Cooldown elapsed: one half-open probe respawns the worker...
        std::thread::sleep(Duration::from_millis(120));
        service.flush().unwrap();
        assert_eq!(
            registry.snapshot().get("infine_service_breaker_state"),
            Some(2.0)
        );
        // ...and its clean round closes the breaker again.
        service.recv_report().unwrap().unwrap();
        assert_eq!(
            registry.snapshot().get("infine_service_breaker_state"),
            Some(0.0)
        );
        assert_eq!(
            registry.snapshot().get("infine_service_respawns_total"),
            Some(2.0)
        );
        service.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn respawn_retry_exhaustion_surfaces_the_last_error() {
        let dir = tmpdir("exhaust");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        service.poison();
        wait_dead(&service);
        assert!(matches!(
            service.recv_report(),
            Some(Err(MaintenanceError::WorkerDied))
        ));
        // Nuke the durable state: every recovery attempt must fail, and
        // respawn gives up with the last error instead of spinning.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            service.respawn(),
            Err(MaintenanceError::Durability(_))
        ));
    }

    #[test]
    fn deadline_variants_time_out_and_pair_cleanly() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        // Idle service: a bounded receive reports Timeout, not a hang.
        assert!(matches!(
            service.recv_report_timeout(Duration::from_millis(20)),
            Some(Err(MaintenanceError::Timeout))
        ));
        // flush_deadline pairs the command with the next report.
        let report = service.flush_deadline(Duration::from_secs(5)).unwrap();
        assert!(report.vacuum.is_none());
        // shutdown_deadline with a live, idle worker completes normally.
        let engine = service
            .shutdown_deadline(Duration::from_secs(5))
            .expect("idle shutdown beats the deadline");
        assert_eq!(engine.database().expect("p").nrows(), 4);
    }

    #[test]
    fn shutdown_deadline_detaches_a_stalled_worker() {
        let dir = tmpdir("detach");
        let mut fp = FailPoints::none();
        fp.arm_delay(infine_durability::failpoint::WAL_APPEND, 1, 1, 400);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).failpoints(fp),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        let t0 = Instant::now();
        while service.stats().in_flight != 1 {
            assert!(t0.elapsed() < Duration::from_secs(5), "never saw in-flight");
            std::thread::yield_now();
        }
        match service.shutdown_deadline(Duration::from_millis(50)) {
            Err(MaintenanceError::Timeout) => {}
            Err(e) => panic!("expected Timeout, got {e:?}"),
            Ok(_) => panic!("expected Timeout, got a finished engine"),
        }
        // The detached worker finishes its drain on its own; let it
        // release the directory before sweeping.
        std::thread::sleep(Duration::from_millis(500));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_rounds_defer_snapshots_until_backlog_clears() {
        let registry = infine_obs::Registry::scoped();
        let _scope = registry.enter();
        let dir = tmpdir("degraded");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let policies =
            ServicePolicies::default().ingest(IngestPolicy::unbounded().degrade_above(0));
        let options = DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(1));
        let service =
            MaintenanceService::spawn_durable_with_policies(engine, options.clone(), policies)
                .unwrap();
        // Every ingest-driven round starts with its own batch already
        // counted in the backlog, so with a high-water mark of 0 each
        // one runs degraded and the every-round snapshot policy defers.
        for v in 5..8 {
            service.ingest(insert_p(v)).unwrap();
            service.recv_report().unwrap().unwrap();
        }
        assert_eq!(
            registry
                .snapshot()
                .get("infine_service_degraded_rounds_total"),
            Some(3.0)
        );
        let mut snaps: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.ends_with(".snap"))
            .collect();
        snaps.sort();
        assert_eq!(
            snaps,
            vec!["snap-00000000000000000000.snap".to_string()],
            "policy cuts must defer while degraded"
        );
        // An explicit snapshot command is always honored.
        service.snapshot().unwrap();
        service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        let expect = engine.report().triples.clone();
        // Recovery replays the degraded suffix with the same deferrals
        // and converges to the same state.
        let (service, info) = MaintenanceService::recover(
            options,
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        assert!(info.clean_shutdown);
        assert_eq!(info.snapshot_epoch, 4);
        assert_eq!(info.durable_rounds, 4);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.report().triples, expect);
        assert_eq!(recovered.database().expect("p").nrows(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
