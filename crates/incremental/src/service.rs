//! The channel-driven maintenance service: deltas in,
//! [`MaintenanceReport`]s out, producers never block on maintenance.
//!
//! [`MaintenanceService::spawn`] moves a [`ShardedEngine`] onto a worker
//! thread and hands back a handle with two channels: a request sender
//! (ingest / flush) and a report receiver. Producers [`ingest`] batches
//! at any rate; the worker drains everything queued while it was busy and
//! **coalesces the pending batches per table** ([`DeltaBatch::then`])
//! before running one sharded maintenance round — so a burst of ten
//! batches against one table costs one round, not ten, and the emitted
//! report describes the combined delta.
//!
//! Batch addressing contract: each ingested batch addresses its table in
//! the *logical stream state* — the base table after every previously
//! *accepted* batch, in ingestion order. That is exactly what a producer
//! tailing its own change feed sees. Malformed batches (unknown table,
//! out-of-range delete, arity mismatch) are rejected at ingestion and
//! surface as `Err` on the report channel without poisoning the pending
//! state; the rest of the failing [`ingest`] call is dropped with them
//! (its batches assumed the rejected one applied). A rejection is a
//! stream fault: batches the producer derived *after* the rejected one —
//! including ones already queued in later ingest calls — may address
//! rows the service never created, so on an `Err` report the producer
//! should re-derive its feed from the engine's actual state (e.g. flush,
//! then rebuild its mirror).
//!
//! [`ingest`]: MaintenanceService::ingest

use crate::engine::{MaintenanceError, MaintenanceReport};
use crate::shard::ShardedEngine;
use infine_relation::{DeltaBatch, DeltaRelation};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

enum Request {
    Ingest(Vec<DeltaRelation>),
    Flush,
}

/// Handle to a background sharded-maintenance loop.
///
/// ```
/// use infine_core::InFine;
/// use infine_incremental::{MaintenanceService, ShardedEngine};
/// use infine_algebra::ViewSpec;
/// use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
///
/// let mut db = Database::new();
/// db.insert(relation_from_rows(
///     "t",
///     &["k", "v"],
///     &[&[Value::Int(1), Value::Int(10)], &[Value::Int(2), Value::Int(20)]],
/// ));
/// let engine = ShardedEngine::new(InFine::default(), db, ViewSpec::base("t"), 2).unwrap();
/// let service = MaintenanceService::spawn(engine);
/// let mut batch = DeltaBatch::new();
/// batch.insert(vec![Value::Int(3), Value::Int(10)]);
/// service.ingest(vec![DeltaRelation::new("t", batch)]);
/// let report = service.recv_report().unwrap().unwrap();
/// assert!(report.exact_provenance);
/// let engine = service.shutdown();
/// assert_eq!(engine.database().expect("t").nrows(), 3);
/// ```
pub struct MaintenanceService {
    requests: Sender<Request>,
    reports: Receiver<Result<MaintenanceReport, MaintenanceError>>,
    worker: Option<JoinHandle<ShardedEngine>>,
}

impl MaintenanceService {
    /// Move `engine` onto a worker thread and start the loop.
    pub fn spawn(engine: ShardedEngine) -> MaintenanceService {
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel();
        let worker = std::thread::Builder::new()
            .name("infine-maintenance".into())
            .spawn(move || run(engine, req_rx, rep_tx))
            .expect("spawn maintenance worker");
        MaintenanceService {
            requests: req_tx,
            reports: rep_rx,
            worker: Some(worker),
        }
    }

    /// Queue a round of delta batches (non-blocking). Returns `false`
    /// when the worker is gone (nothing was queued).
    pub fn ingest(&self, deltas: Vec<DeltaRelation>) -> bool {
        self.requests.send(Request::Ingest(deltas)).is_ok()
    }

    /// Force a maintenance round now, even if nothing is pending (the
    /// empty round re-emits the current state with every FD untouched).
    /// Returns `false` when the worker is gone.
    pub fn flush(&self) -> bool {
        self.requests.send(Request::Flush).is_ok()
    }

    /// Block until the next round report (or ingestion error) arrives;
    /// `None` once the worker has exited and the channel drained.
    pub fn recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        self.reports.recv().ok()
    }

    /// Non-blocking report poll.
    pub fn try_recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        match self.reports.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Stop the loop (after a final round draining any pending batches)
    /// and get the engine back for inspection. Unread reports are
    /// discarded with the handle — receive them first if you need them;
    /// the engine's state reflects every drained round either way.
    pub fn shutdown(mut self) -> ShardedEngine {
        drop(std::mem::replace(&mut self.requests, {
            // Dropping the sender is the shutdown signal; replace it with
            // a dangling one so Drop has something to drop.
            std::sync::mpsc::channel().0
        }));
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .expect("maintenance worker panicked")
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Disconnect the request channel so the loop exits, then wait
            // for the final round.
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut self.requests, dangling));
            let _ = worker.join();
        }
    }
}

/// The worker loop: block for work, drain the queue, coalesce, run one
/// round, repeat. A disconnected request channel ends the loop after a
/// final round for whatever is still pending.
fn run(
    mut engine: ShardedEngine,
    requests: Receiver<Request>,
    reports: Sender<Result<MaintenanceReport, MaintenanceError>>,
) -> ShardedEngine {
    let mut pending: HashMap<String, DeltaBatch> = HashMap::new();
    while let Ok(first) = requests.recv() {
        let mut queued = vec![first];
        while let Ok(more) = requests.try_recv() {
            queued.push(more);
        }
        let mut flush = false;
        for req in queued {
            match req {
                Request::Ingest(deltas) => {
                    // One rejected batch drops the REST of this ingest
                    // request too: every later batch addresses a stream
                    // state that assumed the rejected one applied, so
                    // folding it in would silently hit the wrong rows.
                    // The producer sees the `Err` report and re-derives
                    // its feed from the engine state.
                    for d in deltas {
                        if let Err(e) = coalesce_into(&engine, &mut pending, d) {
                            let _ = reports.send(Err(e));
                            break;
                        }
                    }
                }
                Request::Flush => flush = true,
            }
        }
        if !pending.is_empty() || flush {
            let round: Vec<DeltaRelation> = pending
                .drain()
                .map(|(target, batch)| DeltaRelation::new(target, batch))
                .collect();
            let _ = reports.send(engine.apply(&round));
        }
    }
    if !pending.is_empty() {
        let round: Vec<DeltaRelation> = pending
            .drain()
            .map(|(target, batch)| DeltaRelation::new(target, batch))
            .collect();
        let _ = reports.send(engine.apply(&round));
    }
    engine
}

/// Validate one incoming batch against the logical stream state and fold
/// it into the pending per-table batch.
fn coalesce_into(
    engine: &ShardedEngine,
    pending: &mut HashMap<String, DeltaBatch>,
    delta: DeltaRelation,
) -> Result<(), MaintenanceError> {
    let Some(table) = engine.database().get(&delta.target) else {
        return Err(MaintenanceError::UnknownTable(delta.target));
    };
    if let Some(bad) = delta
        .batch
        .inserts
        .iter()
        .find(|r| r.len() != table.ncols())
    {
        return Err(MaintenanceError::BadBatch(format!(
            "insert arity {} does not match {:?} ({} columns)",
            bad.len(),
            delta.target,
            table.ncols()
        )));
    }
    let base_nrows = table.nrows();
    let logical_nrows = match pending.get(&delta.target) {
        None => base_nrows,
        Some(p) => {
            let distinct_deletes: std::collections::HashSet<u32> =
                p.deletes.iter().copied().collect();
            base_nrows - distinct_deletes.len() + p.inserts.len()
        }
    };
    if let Some(&row) = delta
        .batch
        .deletes
        .iter()
        .find(|&&r| r as usize >= logical_nrows)
    {
        return Err(MaintenanceError::BadBatch(format!(
            "delete of row {row} out of range for {:?} ({logical_nrows} rows in the pending state)",
            delta.target
        )));
    }
    match pending.remove(&delta.target) {
        None => {
            pending.insert(delta.target, delta.batch);
        }
        Some(p) => {
            pending.insert(delta.target, p.then(&delta.batch, base_nrows));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaintenanceEngine;
    use infine_algebra::ViewSpec;
    use infine_core::InFine;
    use infine_relation::{relation_from_rows, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    #[test]
    fn service_round_trips_and_matches_full_discovery() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
        assert!(service.ingest(vec![DeltaRelation::new("p", b)]));
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown();
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        assert_eq!(report.triples, fresh.triples);
    }

    #[test]
    fn sequential_ingests_for_one_table_coalesce_like_sequential_rounds() {
        // Reference: an unsharded engine fed the two batches as two
        // rounds. The service receives both in one ingest call, coalesces
        // them into one round, and must land in the same state.
        let mut reference = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut b1 = DeltaBatch::new();
        b1.delete(0)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)]);
        // b2 addresses the post-b1 state: rid 3 is the inserted row.
        let mut b2 = DeltaBatch::new();
        b2.delete(3)
            .insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        reference
            .apply_one(&DeltaRelation::new("p", b1.clone()))
            .unwrap();
        reference
            .apply_one(&DeltaRelation::new("p", b2.clone()))
            .unwrap();

        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service.ingest(vec![
            DeltaRelation::new("p", b1),
            DeltaRelation::new("p", b2),
        ]);
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown();
        assert_eq!(engine.report().triples, reference.report().triples);
        assert_eq!(
            report.cover.to_sorted_vec(),
            reference.fd_set().to_sorted_vec()
        );
        // Row values agree (codes may differ through coalescing).
        let a = reference.database().expect("p");
        let b = engine.database().expect("p");
        assert_eq!(a.nrows(), b.nrows());
        for r in 0..a.nrows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn malformed_ingest_surfaces_as_error_without_poisoning() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        service.ingest(vec![DeltaRelation::new("p", bad)]);
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // The loop is still alive and healthy.
        let mut ok = DeltaBatch::new();
        ok.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        service.ingest(vec![DeltaRelation::new("p", ok)]);
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown();
        assert_eq!(engine.database().expect("p").nrows(), 5);
    }

    #[test]
    fn flush_emits_an_untouched_round() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let held = engine.fd_set().len();
        let service = MaintenanceService::spawn(engine);
        service.flush();
        let report = service.recv_report().unwrap().unwrap();
        assert_eq!(report.count_status(crate::FdStatus::Untouched), held,);
        service.shutdown();
    }

    #[test]
    fn pending_batches_drain_on_shutdown() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(8), Value::str("d"), Value::Int(4)]);
        service.ingest(vec![DeltaRelation::new("p", b)]);
        let engine = service.shutdown();
        assert_eq!(engine.database().expect("p").nrows(), 5);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }
}
