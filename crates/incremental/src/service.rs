//! The channel-driven maintenance service: deltas in,
//! [`MaintenanceReport`]s out, producers never block on maintenance.
//!
//! [`MaintenanceService::spawn`] moves a [`ShardedEngine`] onto a worker
//! thread and hands back a handle with two channels: a request sender
//! (ingest / flush / vacuum) and a report receiver. Producers [`ingest`]
//! batches at any rate; the worker drains everything queued while it was
//! busy and **coalesces the pending batches per table**
//! ([`DeltaBatch::then`]) before running one sharded maintenance round —
//! so a burst of ten batches against one table costs one round, not ten,
//! and the emitted report describes the combined delta.
//!
//! Batch addressing contract: each ingested batch addresses its table in
//! the *logical stream state* — the base table after every previously
//! *accepted* batch, in ingestion order. That is exactly what a producer
//! tailing its own change feed sees. Malformed batches (unknown table,
//! out-of-range delete, arity mismatch) are rejected at ingestion and
//! surface as `Err` on the report channel without poisoning the pending
//! state; the rest of the failing [`ingest`] call is dropped with them
//! (its batches assumed the rejected one applied). The whole boundary is
//! panic-free: validation plus the fallible [`DeltaBatch::try_then`]
//! composition guarantee a malformed batch can never kill the worker
//! thread. A rejection is a stream fault: batches the producer derived
//! *after* the rejected one — including ones already queued in later
//! ingest calls — may address rows the service never created, so on an
//! `Err` report the producer should re-derive its feed from the engine's
//! actual state (e.g. flush, then rebuild its mirror).
//!
//! ## Vacuum between rounds
//!
//! Under [`DeletePolicy`](crate::DeletePolicy)`::Tombstone` the engine's
//! fragments accumulate dead rows until a vacuum. The service runs one
//! **between rounds** — the ingest loop never stops — in two ways:
//! automatically, when the engine's tombstone fraction exceeds
//! [`VacuumPolicy::max_tombstone_fraction`] after a round; or on demand
//! via [`MaintenanceService::vacuum`] (the explicit vacuum command,
//! which also forces a round so a report is emitted promptly). Either
//! way the pass is recorded in the emitted report's
//! [`vacuum`](MaintenanceReport::vacuum) field.
//!
//! ## Worker death
//!
//! If the worker thread ever panics (a bug, not reachable from malformed
//! input), the handle reports it instead of hanging or panicking the
//! caller: [`ingest`]/[`flush`]/[`vacuum`] return
//! [`MaintenanceError::WorkerDied`], [`recv_report`] yields it once as a
//! final `Err` report, and [`shutdown`] returns it instead of
//! propagating the panic.
//!
//! [`ingest`]: MaintenanceService::ingest
//! [`flush`]: MaintenanceService::flush
//! [`vacuum`]: MaintenanceService::vacuum
//! [`recv_report`]: MaintenanceService::recv_report
//! [`shutdown`]: MaintenanceService::shutdown

use crate::engine::{MaintenanceError, MaintenanceReport, TombstoneStats};
use crate::persist;
use crate::shard::ShardedEngine;
use infine_algebra::ViewSpec;
use infine_core::{InFine, InFineConfig};
use infine_durability::failpoint::ROUND_COMMIT;
use infine_durability::{wal, DurabilityError, FailPoints, SnapshotPolicy, SnapshotStore, Wal};
use infine_relation::{DeltaBatch, DeltaRelation};
use std::cell::Cell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Request {
    Ingest(Vec<DeltaRelation>),
    Flush,
    Vacuum,
    /// Cut a snapshot now (durable services; a plain flush otherwise).
    Snapshot,
    /// Test-only: make the worker panic to exercise death handling.
    #[cfg(test)]
    Poison,
}

fn dur(e: DurabilityError) -> MaintenanceError {
    MaintenanceError::Durability(e.to_string())
}

/// When the service runs a vacuum between rounds (tombstone engines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VacuumPolicy {
    /// Vacuum after any round that leaves the engine's dead-row fraction
    /// ([`TombstoneStats::fraction`]) above this threshold. `None`
    /// disables automatic vacuums (explicit
    /// [`MaintenanceService::vacuum`] commands still work).
    pub max_tombstone_fraction: Option<f64>,
}

impl VacuumPolicy {
    /// Vacuum whenever the dead fraction exceeds `fraction` (0.25 = a
    /// quarter of the physical rows are garbage).
    pub fn at_fraction(fraction: f64) -> VacuumPolicy {
        VacuumPolicy {
            max_tombstone_fraction: Some(fraction),
        }
    }

    fn should(&self, stats: TombstoneStats) -> bool {
        self.max_tombstone_fraction
            .is_some_and(|t| stats.fraction() > t)
    }
}

/// Where and how a durable service persists its state
/// ([`MaintenanceService::spawn_durable`] /
/// [`MaintenanceService::recover`]).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the commitlog segments and snapshots.
    pub dir: PathBuf,
    /// When the worker cuts a snapshot (an explicit
    /// [`MaintenanceService::snapshot`] command always does).
    pub snapshot_policy: SnapshotPolicy,
    /// Injected-crash sites for kill-and-recover testing
    /// ([`FailPoints::none`] in production).
    pub failpoints: FailPoints,
}

impl DurabilityOptions {
    /// Durability under `dir` with a snapshot every 32 rounds and no
    /// fail points.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: dir.into(),
            snapshot_policy: SnapshotPolicy::every_rounds(32),
            failpoints: FailPoints::none(),
        }
    }

    /// Replace the snapshot policy.
    pub fn snapshot_policy(mut self, policy: SnapshotPolicy) -> DurabilityOptions {
        self.snapshot_policy = policy;
        self
    }

    /// Arm fail points (tests; see [`FailPoints::from_env`]).
    pub fn failpoints(mut self, failpoints: FailPoints) -> DurabilityOptions {
        self.failpoints = failpoints;
        self
    }
}

/// What [`MaintenanceService::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryInfo {
    /// Rounds durably incorporated in the recovered engine: the snapshot
    /// epoch plus every commitlog round replayed on top. A producer
    /// re-feeding its stream resumes after this many rounds.
    pub durable_rounds: u64,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Commitlog rounds replayed through the normal round path.
    pub replayed_rounds: u64,
    /// The log ended with an intact clean-shutdown marker (no tail
    /// suspicion; any warning below is real corruption, not a crash).
    pub clean_shutdown: bool,
    /// What salvage had to tolerate: snapshots skipped for checksum
    /// failures, a torn or corrupt commitlog tail.
    pub warnings: Vec<String>,
}

/// Durability state owned by the worker thread.
struct DurableWorker {
    wal: Wal,
    store: SnapshotStore,
    policy: SnapshotPolicy,
    failpoints: FailPoints,
    /// Index of the last round appended to the commitlog (1-based;
    /// equals the snapshot epoch right after a cut).
    round_index: u64,
    rounds_since_snapshot: u64,
    bytes_since_snapshot: u64,
}

/// Everything the handle needs to rebuild the service from disk after
/// the worker dies ([`MaintenanceService::respawn`]).
struct DurableContext {
    options: DurabilityOptions,
    config: InFineConfig,
    spec: ViewSpec,
    vacuum_policy: VacuumPolicy,
    respawns: infine_obs::Counter,
}

/// Point-in-time service health, from [`MaintenanceService::stats`] —
/// lock-free reads of counters the handle and the worker share, safe to
/// poll from any thread at any rate.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Delta batches ingested but not yet drained into a round by the
    /// worker (the channel backlog a slow consumer would see grow).
    pub queue_depth: usize,
    /// Maintenance rounds completed since spawn (drained-on-shutdown
    /// rounds included).
    pub rounds_completed: u64,
    /// Wall time of the most recent round (drain + coalesce + apply +
    /// any folded vacuum). Zero until the first round completes.
    pub last_round: Duration,
    /// False once the worker thread has exited — cleanly after
    /// [`MaintenanceService::shutdown`]/drop, or by panicking.
    pub worker_alive: bool,
}

/// Counters shared between the handle and the worker thread.
#[derive(Debug, Default)]
struct SharedStats {
    queue_depth: AtomicI64,
    rounds: AtomicU64,
    last_round_nanos: AtomicU64,
}

/// Preregistered service-loop metric handles. Registered at spawn time
/// on the *caller's* ambient registry (worker threads have no ambient
/// scope of their own), then moved onto the worker.
struct ServiceObs {
    queue_depth: infine_obs::Gauge,
    rounds: infine_obs::Counter,
    batches: infine_obs::Counter,
    coalesced: infine_obs::Counter,
    rejected: infine_obs::Counter,
    round_seconds: infine_obs::Histogram,
    wal_appends: infine_obs::Counter,
    wal_bytes: infine_obs::Counter,
    snapshot_seconds: infine_obs::Histogram,
    respawns: infine_obs::Counter,
}

impl ServiceObs {
    fn resolve() -> ServiceObs {
        // Pin the recovery-path series alongside the rest so the
        // exposition catalog is identical before and after a recovery.
        let _ = ServiceObs::recovery_handles();
        infine_obs::with_current(|r| {
            ServiceObs {
            queue_depth: r.gauge(
                "infine_service_queue_depth",
                "Delta batches ingested but not yet drained into a round.",
                &[],
            ),
            rounds: r.counter(
                "infine_service_rounds_total",
                "Maintenance rounds the service loop has completed.",
                &[],
            ),
            batches: r.counter(
                "infine_service_batches_total",
                "Delta batches accepted at ingestion (validation passed).",
                &[],
            ),
            coalesced: r.counter(
                "infine_service_coalesced_total",
                "Accepted batches folded into an already-pending batch for the same table (rounds saved by coalescing).",
                &[],
            ),
            rejected: r.counter(
                "infine_service_rejected_total",
                "Delta batches rejected at ingestion (malformed).",
                &[],
            ),
            round_seconds: r.duration_histogram(
                "infine_service_round_seconds",
                "Wall time of one service round: queue drain, coalescing, the engine round, and any folded vacuum.",
                &[],
            ),
            wal_appends: r.counter(
                "infine_wal_appends_total",
                "Round records appended (and flushed) to the write-ahead commitlog.",
                &[],
            ),
            wal_bytes: r.counter(
                "infine_wal_bytes_total",
                "Bytes appended to the write-ahead commitlog.",
                &[],
            ),
            snapshot_seconds: r.duration_histogram(
                "infine_snapshot_seconds",
                "Wall time of one snapshot cut: canonicalizing vacuum, engine freeze, atomic publish, and log rotation.",
                &[],
            ),
            respawns: r.counter(
                "infine_service_respawns_total",
                "Workers restarted from durable state after a death (MaintenanceService::respawn).",
                &[],
            ),
        }
        })
    }

    /// The recovery-path series, registered alongside the rest of the
    /// service catalog so the exposition is identical whether or not a
    /// recovery has happened yet.
    fn recovery_handles() -> (infine_obs::Histogram, infine_obs::Counter) {
        infine_obs::with_current(|r| {
            (
                r.duration_histogram(
                    "infine_recovery_seconds",
                    "Wall time of one recovery: snapshot load, engine restore, commitlog replay, fresh snapshot.",
                    &[],
                ),
                r.counter(
                    "infine_wal_replayed_rounds_total",
                    "Commitlog rounds replayed through the normal round path during recovery.",
                    &[],
                ),
            )
        })
    }
}

/// Handle to a background sharded-maintenance loop.
///
/// ```
/// use infine_core::InFine;
/// use infine_incremental::{MaintenanceService, ShardedEngine};
/// use infine_algebra::ViewSpec;
/// use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
///
/// let mut db = Database::new();
/// db.insert(relation_from_rows(
///     "t",
///     &["k", "v"],
///     &[&[Value::Int(1), Value::Int(10)], &[Value::Int(2), Value::Int(20)]],
/// ));
/// let engine = ShardedEngine::new(InFine::default(), db, ViewSpec::base("t"), 2).unwrap();
/// let service = MaintenanceService::spawn(engine);
/// let mut batch = DeltaBatch::new();
/// batch.insert(vec![Value::Int(3), Value::Int(10)]);
/// service.ingest(vec![DeltaRelation::new("t", batch)]).unwrap();
/// let report = service.recv_report().unwrap().unwrap();
/// assert!(report.exact_provenance);
/// let engine = service.shutdown().unwrap();
/// assert_eq!(engine.database().expect("t").nrows(), 3);
/// ```
pub struct MaintenanceService {
    requests: Sender<Request>,
    reports: Receiver<Result<MaintenanceReport, MaintenanceError>>,
    worker: Option<JoinHandle<ShardedEngine>>,
    /// Worker death is reported through `recv_report` exactly once.
    death_reported: Cell<bool>,
    /// Lock-free health counters shared with the worker.
    stats: Arc<SharedStats>,
    /// Queue-depth gauge (the handle raises it at ingestion, the worker
    /// lowers it when it drains).
    queue_gauge: infine_obs::Gauge,
    /// Set when durability is on: everything respawn needs to rebuild
    /// the worker from disk.
    durable: Option<DurableContext>,
}

impl MaintenanceService {
    /// Move `engine` onto a worker thread and start the loop (no
    /// automatic vacuums; see [`MaintenanceService::spawn_with_policy`]).
    pub fn spawn(engine: ShardedEngine) -> MaintenanceService {
        MaintenanceService::spawn_with_policy(engine, VacuumPolicy::default())
    }

    /// [`MaintenanceService::spawn`] with a vacuum policy: after each
    /// round the worker checks the engine's tombstone fraction and runs
    /// a per-shard parallel vacuum when the policy says so — between
    /// rounds, without stopping the ingest loop.
    pub fn spawn_with_policy(engine: ShardedEngine, policy: VacuumPolicy) -> MaintenanceService {
        MaintenanceService::spawn_inner(engine, policy, None, None)
    }

    /// [`MaintenanceService::spawn_with_policy`] with crash-safe
    /// durability: every ingested round is appended (and flushed) to a
    /// write-ahead commitlog under `options.dir` *before* the engine
    /// runs it, and the engine state is snapshotted in vacuum-canonical
    /// form on the snapshot policy (or an explicit
    /// [`MaintenanceService::snapshot`] command). A baseline snapshot is
    /// cut here, so [`MaintenanceService::recover`] always has a
    /// starting point. The engine is vacuumed as part of the cut.
    pub fn spawn_durable(
        mut engine: ShardedEngine,
        policy: VacuumPolicy,
        options: DurabilityOptions,
    ) -> Result<MaintenanceService, MaintenanceError> {
        let context = DurableContext {
            options: options.clone(),
            config: engine.infine.config,
            spec: engine.spec.clone(),
            vacuum_policy: policy,
            respawns: ServiceObs::resolve().respawns,
        };
        let store = SnapshotStore::new(&options.dir, options.failpoints.clone());
        engine.vacuum();
        let payload = persist::freeze_engine(&mut engine)?;
        store.publish(0, &payload).map_err(dur)?;
        let wal = Wal::create(&options.dir, 0, options.failpoints.clone()).map_err(dur)?;
        let durable = DurableWorker {
            wal,
            store,
            policy: options.snapshot_policy,
            failpoints: options.failpoints,
            round_index: 0,
            rounds_since_snapshot: 0,
            bytes_since_snapshot: 0,
        };
        Ok(MaintenanceService::spawn_inner(
            engine,
            policy,
            Some(durable),
            Some(context),
        ))
    }

    fn spawn_inner(
        engine: ShardedEngine,
        policy: VacuumPolicy,
        durable: Option<DurableWorker>,
        context: Option<DurableContext>,
    ) -> MaintenanceService {
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel();
        let stats = Arc::new(SharedStats::default());
        let obs = ServiceObs::resolve();
        let queue_gauge = obs.queue_depth.clone();
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("infine-maintenance".into())
            .spawn(move || run(engine, policy, durable, req_rx, rep_tx, worker_stats, obs))
            .expect("spawn maintenance worker");
        MaintenanceService {
            requests: req_tx,
            reports: rep_rx,
            worker: Some(worker),
            death_reported: Cell::new(false),
            stats,
            queue_gauge,
            durable: context,
        }
    }

    /// Rebuild a service from the durable state under `options.dir`:
    /// load the newest valid snapshot (falling back to an older one on
    /// checksum mismatch), replay the commitlog suffix through the
    /// normal round path — tolerating a torn or corrupt tail by
    /// truncating at the damage — cut a fresh snapshot at the recovered
    /// head, and spawn the worker. `infine` and `spec` must match the
    /// original spawn (the snapshot's spec fingerprint is checked).
    ///
    /// The returned [`RecoveryInfo`] says how many rounds are durably
    /// incorporated; a producer re-feeds its stream from there.
    pub fn recover(
        options: DurabilityOptions,
        infine: InFine,
        spec: ViewSpec,
        vacuum_policy: VacuumPolicy,
    ) -> Result<(MaintenanceService, RecoveryInfo), MaintenanceError> {
        let t0 = Instant::now();
        let (recovery_seconds, replayed_counter) = ServiceObs::recovery_handles();
        let context = DurableContext {
            options: options.clone(),
            config: infine.config,
            spec: spec.clone(),
            vacuum_policy,
            respawns: ServiceObs::resolve().respawns,
        };
        let store = SnapshotStore::new(&options.dir, options.failpoints.clone());
        let loaded = store.load_newest().map_err(dur)?.ok_or_else(|| {
            MaintenanceError::Durability(format!("no valid snapshot under {:?}", options.dir))
        })?;
        let mut warnings: Vec<String> = loaded
            .skipped
            .iter()
            .map(|(epoch, why)| format!("snapshot {epoch} skipped: {why}"))
            .collect();
        let mut engine = persist::restore_engine(&loaded.payload, infine, spec)?;
        let scan = wal::scan(&options.dir, loaded.epoch).map_err(dur)?;
        warnings.extend(scan.warning.clone());

        // Replay the salvaged suffix through the normal round path,
        // re-deciding every vacuum exactly as the live run decided it:
        // explicit commands from the record flags, policy vacuums from
        // the (identical) engine state, snapshot-cut vacuums from the
        // (identically recomputed) due counters — snapshots themselves
        // are not re-published; one fresh cut below supersedes them.
        let mut round_index = loaded.epoch;
        let mut rounds_since = 0u64;
        let mut bytes_since = 0u64;
        for record in &scan.rounds {
            let (deltas, flags) = persist::decode_round(&record.body)?;
            engine.apply(&deltas).map_err(|e| {
                MaintenanceError::Durability(format!(
                    "replay of round {} failed: {e}",
                    record.round_index
                ))
            })?;
            if flags & persist::ROUND_VACUUM != 0 || vacuum_policy.should(engine.tombstone_stats())
            {
                engine.vacuum();
            }
            round_index = record.round_index;
            rounds_since += 1;
            bytes_since += Wal::round_record_len(record.body.len());
            if flags & persist::ROUND_SNAPSHOT != 0
                || options.snapshot_policy.due(rounds_since, bytes_since)
            {
                engine.vacuum();
                rounds_since = 0;
                bytes_since = 0;
            }
            replayed_counter.inc();
        }

        // Cut a fresh snapshot at the recovered head and rotate the log:
        // recovery is idempotent and the next replay suffix starts empty.
        // Exception: when the newest on-disk snapshot loaded cleanly and
        // the log held nothing past it, the engine *is* that snapshot —
        // re-freezing it would only burn serialization and fsync time
        // (this is the common restart-after-clean-shutdown case), so
        // only the log segment is reset.
        let retain_from = if scan.rounds.is_empty() && loaded.skipped.is_empty() {
            store
                .epochs()
                .map_err(dur)?
                .first()
                .copied()
                .unwrap_or(round_index)
        } else {
            engine.vacuum();
            let payload = persist::freeze_engine(&mut engine)?;
            let retained = store.publish(round_index, &payload).map_err(dur)?;
            retained.first().copied().unwrap_or(round_index)
        };
        let wal =
            Wal::create(&options.dir, round_index, options.failpoints.clone()).map_err(dur)?;
        wal::prune_segments(&options.dir, retain_from).map_err(dur)?;

        let info = RecoveryInfo {
            durable_rounds: round_index,
            snapshot_epoch: loaded.epoch,
            replayed_rounds: scan.rounds.len() as u64,
            clean_shutdown: scan.clean_shutdown,
            warnings,
        };
        recovery_seconds.observe_duration(t0.elapsed());
        let durable = DurableWorker {
            wal,
            store,
            policy: options.snapshot_policy,
            failpoints: options.failpoints,
            round_index,
            rounds_since_snapshot: 0,
            bytes_since_snapshot: 0,
        };
        let service =
            MaintenanceService::spawn_inner(engine, vacuum_policy, Some(durable), Some(context));
        Ok((service, info))
    }

    /// Restart a dead worker from the durable state on disk (snapshot +
    /// commitlog), in place: after this returns `Ok`, the handle serves
    /// requests again. Only valid for services spawned with
    /// [`MaintenanceService::spawn_durable`] (or recovered) whose worker
    /// has died; retries the recovery a bounded number of times before
    /// giving up with the last error. Health counters restart from zero
    /// with the new worker.
    pub fn respawn(&mut self) -> Result<RecoveryInfo, MaintenanceError> {
        const ATTEMPTS: usize = 3;
        let Some(context) = &self.durable else {
            return Err(MaintenanceError::Durability(
                "respawn requires a durable service".into(),
            ));
        };
        let dead =
            self.death_reported.get() || self.worker.as_ref().is_none_or(JoinHandle::is_finished);
        if !dead {
            return Err(MaintenanceError::Durability(
                "respawn requires a dead worker (the current one is alive)".into(),
            ));
        }
        // Wait out the unwind before rebuilding from the directory the
        // dying worker still holds open (a reported death guarantees the
        // join terminates: the report channel only disconnects on exit).
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let options = context.options.clone();
        let config = context.config;
        let spec = context.spec.clone();
        let vacuum_policy = context.vacuum_policy;
        let respawns = context.respawns.clone();
        let mut last = None;
        for _ in 0..ATTEMPTS {
            match MaintenanceService::recover(
                options.clone(),
                InFine::new(config),
                spec.clone(),
                vacuum_policy,
            ) {
                Ok((service, info)) => {
                    // The old handle's dead worker joins in the drop.
                    *self = service;
                    respawns.inc();
                    return Ok(info);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Ask the worker to cut a snapshot now (durable services; on a
    /// non-durable service this degrades to a flush). A round report is
    /// emitted. `Err(WorkerDied)` when the worker is gone.
    pub fn snapshot(&self) -> Result<(), MaintenanceError> {
        self.send(Request::Snapshot)
    }

    /// Queue a round of delta batches (non-blocking).
    /// `Err(WorkerDied)` when the worker is gone (nothing was queued).
    pub fn ingest(&self, deltas: Vec<DeltaRelation>) -> Result<(), MaintenanceError> {
        let queued = deltas.len() as i64;
        self.send(Request::Ingest(deltas))?;
        self.stats.queue_depth.fetch_add(queued, Ordering::Relaxed);
        self.queue_gauge.add(queued);
        Ok(())
    }

    /// Point-in-time service health: queue depth, rounds completed,
    /// last-round latency, and whether the worker thread is alive.
    /// Lock-free; callable from any thread at any rate.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed).max(0) as usize,
            rounds_completed: self.stats.rounds.load(Ordering::Relaxed),
            last_round: Duration::from_nanos(self.stats.last_round_nanos.load(Ordering::Relaxed)),
            worker_alive: self.worker.as_ref().is_some_and(|w| !w.is_finished()),
        }
    }

    /// Force a maintenance round now, even if nothing is pending (the
    /// empty round re-emits the current state with every FD untouched).
    /// `Err(WorkerDied)` when the worker is gone.
    pub fn flush(&self) -> Result<(), MaintenanceError> {
        self.send(Request::Flush)
    }

    /// Run a vacuum pass between rounds (after draining whatever is
    /// pending), regardless of the policy threshold. A round report is
    /// always emitted, carrying the pass's accounting in
    /// [`MaintenanceReport::vacuum`]. `Err(WorkerDied)` when the worker
    /// is gone.
    pub fn vacuum(&self) -> Result<(), MaintenanceError> {
        self.send(Request::Vacuum)
    }

    /// Shared request path: a finished worker (panicked, or somehow
    /// exited) can never process the request, so refuse up front; a
    /// failing send (receiver dropped mid-unwind) means the same thing.
    fn send(&self, req: Request) -> Result<(), MaintenanceError> {
        if self.worker.as_ref().is_none_or(JoinHandle::is_finished) {
            return Err(MaintenanceError::WorkerDied);
        }
        self.requests
            .send(req)
            .map_err(|_| MaintenanceError::WorkerDied)
    }

    /// Block until the next round report (or ingestion error) arrives.
    /// `None` once the worker has exited cleanly (after
    /// [`MaintenanceService::shutdown`]-less drop) and the channel
    /// drained. If the worker *died* (panicked), the disconnect is
    /// reported as one final `Err(`[`MaintenanceError::WorkerDied`]`)`,
    /// then `None`.
    pub fn recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        match self.reports.recv() {
            Ok(r) => Some(r),
            Err(_) => self.report_death(),
        }
    }

    /// Non-blocking report poll (same death contract as
    /// [`MaintenanceService::recv_report`]).
    pub fn try_recv_report(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        match self.reports.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => self.report_death(),
        }
    }

    /// A disconnected report channel while this handle is still alive
    /// means the worker exited on its own — it panicked (the only clean
    /// exit is our own sender drop in shutdown/Drop). Surface that once.
    fn report_death(&self) -> Option<Result<MaintenanceReport, MaintenanceError>> {
        if self.death_reported.replace(true) {
            None
        } else {
            Some(Err(MaintenanceError::WorkerDied))
        }
    }

    /// Stop the loop (after a final round draining any pending batches)
    /// and get the engine back for inspection. Unread reports are
    /// discarded with the handle — receive them first if you need them;
    /// the engine's state reflects every drained round either way.
    /// `Err(WorkerDied)` when the worker panicked instead of finishing.
    pub fn shutdown(mut self) -> Result<ShardedEngine, MaintenanceError> {
        drop(std::mem::replace(&mut self.requests, {
            // Dropping the sender is the shutdown signal; replace it with
            // a dangling one so Drop has something to drop.
            std::sync::mpsc::channel().0
        }));
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .map_err(|_| MaintenanceError::WorkerDied)
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Disconnect the request channel so the loop exits, then wait
            // for the final round.
            let (dangling, _) = std::sync::mpsc::channel();
            drop(std::mem::replace(&mut self.requests, dangling));
            let _ = worker.join();
        }
    }
}

/// The worker loop: block for work, drain the queue, coalesce, run one
/// round (logged first when durable), vacuum by policy/command, cut
/// snapshots, repeat. A disconnected request channel ends the loop after
/// a final round for whatever is still pending; a durable worker then
/// marks the log cleanly shut down.
fn run(
    mut engine: ShardedEngine,
    policy: VacuumPolicy,
    mut durable: Option<DurableWorker>,
    requests: Receiver<Request>,
    reports: Sender<Result<MaintenanceReport, MaintenanceError>>,
    stats: Arc<SharedStats>,
    obs: ServiceObs,
) -> ShardedEngine {
    // One round's bookkeeping: observe latency, bump the shared health
    // counters, forward the report.
    let finish_round = |result: Result<MaintenanceReport, MaintenanceError>, t0: Instant| {
        let elapsed = t0.elapsed();
        obs.round_seconds.observe_duration(elapsed);
        obs.rounds.inc();
        stats.rounds.fetch_add(1, Ordering::Relaxed);
        stats
            .last_round_nanos
            .store(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let _ = reports.send(result);
    };

    // One full round, write-ahead: log the batch set, apply it, vacuum
    // (commanded or by policy), report, then cut a snapshot when due.
    // The round is sorted by target so the live apply order equals the
    // replay order (`decode_round` yields the codec's name-sorted form).
    let run_round = |engine: &mut ShardedEngine,
                     durable: &mut Option<DurableWorker>,
                     mut round: Vec<DeltaRelation>,
                     vacuum: bool,
                     snapshot_cmd: bool,
                     round_t0: Instant| {
        round.sort_by(|a, b| a.target.cmp(&b.target));
        if let Some(d) = durable.as_mut() {
            let mut flags = 0u8;
            if vacuum {
                flags |= persist::ROUND_VACUUM;
            }
            if snapshot_cmd {
                flags |= persist::ROUND_SNAPSHOT;
            }
            let body = persist::encode_round(&round, flags);
            match d.wal.append_round(d.round_index + 1, &body) {
                Ok(bytes) => {
                    obs.wal_appends.inc();
                    obs.wal_bytes.add(bytes);
                    d.round_index += 1;
                    d.rounds_since_snapshot += 1;
                    d.bytes_since_snapshot += bytes;
                }
                Err(e) => {
                    // The engine must never run ahead of the log: an
                    // unloggable round is DROPPED, not applied, and the
                    // producer re-derives its feed like any rejected
                    // ingest. Round counters stay put — no round ran.
                    let _ = reports.send(Err(dur(e)));
                    return;
                }
            }
        }
        let mut result = engine.apply(&round);
        // Vacuum between rounds: commanded, or by policy threshold.
        // The ingest loop keeps running — producers only ever see the
        // pass as accounting on a round report.
        if vacuum || policy.should(engine.tombstone_stats()) {
            let stats = engine.vacuum();
            match result.as_mut() {
                Ok(report) => report.vacuum = Some(stats),
                Err(_) => {
                    // The failed round still surfaces as its own Err;
                    // the pass is then acknowledged on an empty
                    // follow-up round, keeping the documented "a
                    // vacuum is always reported" contract (consumers
                    // drain until they see `report.vacuum`).
                    let _ = reports.send(result);
                    result = engine.apply(&[]).map(|mut report| {
                        report.vacuum = Some(stats);
                        report
                    });
                }
            }
        }
        if let Some(d) = durable.as_ref() {
            // Logged and applied, report not yet sent — the crash that
            // makes recovery replay an already-run round.
            d.failpoints.hit(ROUND_COMMIT);
        }
        finish_round(result, round_t0);
        let Some(d) = durable.as_mut() else { return };
        if !snapshot_cmd
            && !d
                .policy
                .due(d.rounds_since_snapshot, d.bytes_since_snapshot)
        {
            return;
        }
        // Counters reset on ENTRY, publish or fail: replay recomputes
        // due-points from the same counters and must reach the same
        // decisions whether or not the publish below survived.
        d.rounds_since_snapshot = 0;
        d.bytes_since_snapshot = 0;
        let snap_t0 = Instant::now();
        let cut = (|| -> Result<(), MaintenanceError> {
            engine.vacuum();
            let payload = persist::freeze_engine(engine)?;
            let retained = d.store.publish(d.round_index, &payload).map_err(dur)?;
            let retain_from = retained.first().copied().unwrap_or(d.round_index);
            d.wal.rotate(d.round_index, retain_from).map_err(dur)?;
            Ok(())
        })();
        obs.snapshot_seconds.observe_duration(snap_t0.elapsed());
        if let Err(e) = cut {
            // A failed cut is survivable — the previous snapshot plus
            // the still-growing log cover everything — but loud.
            let _ = reports.send(Err(e));
        }
    };

    let mut pending: HashMap<String, DeltaBatch> = HashMap::new();
    while let Ok(first) = requests.recv() {
        let round_t0 = Instant::now();
        let mut queued = vec![first];
        while let Ok(more) = requests.try_recv() {
            queued.push(more);
        }
        let mut flush = false;
        let mut vacuum = false;
        let mut snapshot = false;
        for req in queued {
            match req {
                Request::Ingest(deltas) => {
                    // Drained from the queue, accepted or not.
                    stats
                        .queue_depth
                        .fetch_sub(deltas.len() as i64, Ordering::Relaxed);
                    obs.queue_depth.sub(deltas.len() as i64);
                    // One rejected batch drops the REST of this ingest
                    // request too: every later batch addresses a stream
                    // state that assumed the rejected one applied, so
                    // folding it in would silently hit the wrong rows.
                    // The producer sees the `Err` report and re-derives
                    // its feed from the engine state.
                    for d in deltas {
                        match coalesce_into(&engine, &mut pending, d) {
                            Ok(folded) => {
                                obs.batches.inc();
                                if folded {
                                    obs.coalesced.inc();
                                }
                            }
                            Err(e) => {
                                obs.rejected.inc();
                                let _ = reports.send(Err(e));
                                break;
                            }
                        }
                    }
                }
                Request::Flush => flush = true,
                Request::Vacuum => vacuum = true,
                Request::Snapshot => snapshot = true,
                #[cfg(test)]
                Request::Poison => panic!("test-injected worker panic"),
            }
        }
        if !pending.is_empty() || flush || vacuum || snapshot {
            let round: Vec<DeltaRelation> = pending
                .drain()
                .map(|(target, batch)| DeltaRelation::new(target, batch))
                .collect();
            run_round(&mut engine, &mut durable, round, vacuum, snapshot, round_t0);
        }
    }
    if !pending.is_empty() {
        let round_t0 = Instant::now();
        let round: Vec<DeltaRelation> = pending
            .drain()
            .map(|(target, batch)| DeltaRelation::new(target, batch))
            .collect();
        run_round(&mut engine, &mut durable, round, false, false, round_t0);
    }
    if let Some(d) = durable.as_mut() {
        // Everything reported is logged; tell the next recovery it may
        // treat ANY tail damage as real corruption, not a crash artifact.
        let _ = d.wal.mark_clean_shutdown();
    }
    engine
}

/// Validate one incoming batch against the logical stream state and fold
/// it into the pending per-table batch; `Ok(true)` when it was folded
/// into an already-pending batch for the same table (a round saved by
/// coalescing). Fully fallible: nothing here — including the
/// [`DeltaBatch::try_then`] composition — can panic on malformed input,
/// so a bad batch can never take the worker down.
fn coalesce_into(
    engine: &ShardedEngine,
    pending: &mut HashMap<String, DeltaBatch>,
    delta: DeltaRelation,
) -> Result<bool, MaintenanceError> {
    let Some(table) = engine.database().get(&delta.target) else {
        return Err(MaintenanceError::UnknownTable(delta.target));
    };
    if let Some(bad) = delta
        .batch
        .inserts
        .iter()
        .find(|r| r.len() != table.ncols())
    {
        return Err(MaintenanceError::BadBatch(format!(
            "insert arity {} does not match {:?} ({} columns)",
            bad.len(),
            delta.target,
            table.ncols()
        )));
    }
    let base_nrows = table.live_rows();
    let logical_nrows = match pending.get(&delta.target) {
        None => base_nrows,
        Some(p) => {
            let distinct_deletes: std::collections::HashSet<u32> =
                p.deletes.iter().copied().collect();
            base_nrows - distinct_deletes.len() + p.inserts.len()
        }
    };
    if let Some(&row) = delta
        .batch
        .deletes
        .iter()
        .find(|&&r| r as usize >= logical_nrows)
    {
        return Err(MaintenanceError::BadBatch(format!(
            "delete of row {row} out of range for {:?} ({logical_nrows} rows in the pending state)",
            delta.target
        )));
    }
    match pending.remove(&delta.target) {
        None => {
            pending.insert(delta.target, delta.batch);
            Ok(false)
        }
        Some(p) => match p.try_then(&delta.batch, base_nrows) {
            Ok(folded) => {
                pending.insert(delta.target, folded);
                Ok(true)
            }
            Err(msg) => Err(MaintenanceError::BadBatch(msg)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeletePolicy;
    use crate::shard::InsertPolicy;
    use crate::MaintenanceEngine;
    use infine_algebra::ViewSpec;
    use infine_core::InFine;
    use infine_relation::{relation_from_rows, Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    fn tombstone_engine() -> ShardedEngine {
        ShardedEngine::with_options(
            InFine::default(),
            db(),
            view(),
            2,
            InsertPolicy::default(),
            DeletePolicy::Tombstone,
        )
        .unwrap()
    }

    #[test]
    fn service_round_trips_and_matches_full_discovery() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        assert!(report.vacuum.is_none());
        let engine = service.shutdown().unwrap();
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        assert_eq!(report.triples, fresh.triples);
    }

    #[test]
    fn sequential_ingests_for_one_table_coalesce_like_sequential_rounds() {
        // Reference: an unsharded engine fed the two batches as two
        // rounds. The service receives both in one ingest call, coalesces
        // them into one round, and must land in the same state.
        let mut reference = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut b1 = DeltaBatch::new();
        b1.delete(0)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)]);
        // b2 addresses the post-b1 state: rid 3 is the inserted row.
        let mut b2 = DeltaBatch::new();
        b2.delete(3)
            .insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
        reference
            .apply_one(&DeltaRelation::new("p", b1.clone()))
            .unwrap();
        reference
            .apply_one(&DeltaRelation::new("p", b2.clone()))
            .unwrap();

        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.report().triples, reference.report().triples);
        assert_eq!(
            report.cover.to_sorted_vec(),
            reference.fd_set().to_sorted_vec()
        );
        // Row values agree (codes may differ through coalescing).
        let a = reference.database().expect("p");
        let b = engine.database().expect("p");
        assert_eq!(a.nrows(), b.nrows());
        for r in 0..a.nrows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn malformed_ingest_surfaces_as_error_without_poisoning() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        service.ingest(vec![DeltaRelation::new("p", bad)]).unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // The loop is still alive and healthy.
        let mut ok = DeltaBatch::new();
        ok.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        service.ingest(vec![DeltaRelation::new("p", ok)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
    }

    #[test]
    fn malformed_coalesced_batch_cannot_kill_the_worker() {
        // A second batch whose deletes are in range of the *base* table
        // but out of range of the coalesced intermediate state: with the
        // panicking `then` this killed the worker; `try_then` turns it
        // into an Err report and the loop survives.
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b1 = DeltaBatch::new();
        b1.delete(0).delete(1).delete(2); // p: 4 rows → 1 row pending
        let mut b2 = DeltaBatch::new();
        b2.delete(2); // in range of base p (4 rows), not of pending (1 row)
        service
            .ingest(vec![
                DeltaRelation::new("p", b1),
                DeltaRelation::new("p", b2),
            ])
            .unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        // b1 alone was accepted and the worker is alive: the round ran.
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 1);
    }

    #[test]
    fn flush_emits_an_untouched_round() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let held = engine.fd_set().len();
        let service = MaintenanceService::spawn(engine);
        service.flush().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert_eq!(report.count_status(crate::FdStatus::Untouched), held,);
        service.shutdown().unwrap();
    }

    #[test]
    fn pending_batches_drain_on_shutdown() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(8), Value::str("d"), Value::Int(4)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 5);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn worker_death_surfaces_as_errors_not_hangs_or_panics() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn(engine);
        service.requests.send(Request::Poison).unwrap();
        // The death is reported exactly once, then the stream ends.
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        assert!(service.recv_report().is_none());
        // Wait out the unwind so the request-side observations below are
        // deterministic (the report channel disconnects mid-unwind).
        while !service.worker.as_ref().unwrap().is_finished() {
            std::thread::yield_now();
        }
        // Every request path errors promptly instead of hanging.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("z"), Value::Int(3)]);
        assert!(matches!(
            service.ingest(vec![DeltaRelation::new("p", b)]),
            Err(MaintenanceError::WorkerDied)
        ));
        assert!(matches!(service.flush(), Err(MaintenanceError::WorkerDied)));
        assert!(matches!(
            service.vacuum(),
            Err(MaintenanceError::WorkerDied)
        ));
        // ... and shutdown reports the death instead of panicking.
        assert!(matches!(
            service.shutdown(),
            Err(MaintenanceError::WorkerDied)
        ));
    }

    #[test]
    fn explicit_vacuum_command_runs_between_rounds() {
        let service = MaintenanceService::spawn(tombstone_engine());
        let mut b = DeltaBatch::new();
        b.delete(0).delete(2);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.vacuum.is_none()); // no policy, no command yet
        service.vacuum().unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("vacuum command reports its pass");
        assert!(stats.rows_dropped > 0);
        // The loop keeps serving afterwards.
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(7), Value::str("c"), Value::Int(2)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        assert!(report.exact_provenance);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
    }

    #[test]
    fn vacuum_policy_triggers_automatically() {
        let service = MaintenanceService::spawn_with_policy(
            tombstone_engine(),
            VacuumPolicy::at_fraction(0.2),
        );
        // Delete half of p: the fragment garbage crosses the threshold.
        let mut b = DeltaBatch::new();
        b.delete(0).delete(1);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let stats = report.vacuum.expect("policy-triggered vacuum");
        assert!(stats.rows_dropped >= 2);
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.tombstone_stats().dead_rows(), 0);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "infine-svc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn insert_p(v: i64) -> Vec<DeltaRelation> {
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(v), Value::str("c"), Value::Int(2)]);
        vec![DeltaRelation::new("p", b)]
    }

    #[test]
    fn durable_service_recovers_after_clean_shutdown() {
        let dir = tmpdir("clean");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(5), Value::str("z")]);
        service.ingest(vec![DeltaRelation::new("q", b)]).unwrap();
        service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        let expect = engine.report().triples.clone();

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        assert!(info.clean_shutdown);
        assert_eq!(info.snapshot_epoch, 0);
        assert_eq!(info.replayed_rounds, 2);
        assert_eq!(info.durable_rounds, 2);
        assert!(info.warnings.is_empty(), "{:?}", info.warnings);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.report().triples, expect);
        let fresh = InFine::default()
            .discover(recovered.database(), recovered.spec())
            .unwrap();
        assert_eq!(recovered.report().triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_commit_crash_respawns_without_losing_the_durable_round() {
        let dir = tmpdir("commit-crash");
        let mut fp = FailPoints::none();
        fp.arm(ROUND_COMMIT, 1);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).failpoints(fp),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        // The worker dies after logging + applying, before the report.
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        let info = service.respawn().unwrap();
        // The crashed round was already durable: nothing to re-feed.
        assert_eq!(info.durable_rounds, 1);
        assert_eq!(info.replayed_rounds, 1);
        assert!(!info.clean_shutdown);
        service.ingest(insert_p(6)).unwrap();
        let report = service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 6);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(report.triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_append_crash_drops_exactly_the_unlogged_round() {
        let dir = tmpdir("append-crash");
        let mut fp = FailPoints::none();
        fp.arm(infine_durability::failpoint::WAL_APPEND, 2);
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).failpoints(fp),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        service.ingest(insert_p(6)).unwrap();
        let err = service.recv_report().unwrap().unwrap_err();
        assert!(matches!(err, MaintenanceError::WorkerDied));
        let info = service.respawn().unwrap();
        // Round 2 never reached the log: the producer re-feeds it.
        assert_eq!(info.durable_rounds, 1);
        service.ingest(insert_p(6)).unwrap();
        service.recv_report().unwrap().unwrap();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.database().expect("p").nrows(), 6);
        let fresh = InFine::default()
            .discover(engine.database(), engine.spec())
            .unwrap();
        assert_eq!(engine.report().triples, fresh.triples);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_policy_cuts_and_recovery_replays_only_the_suffix() {
        let dir = tmpdir("snap-policy");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(2)),
        )
        .unwrap();
        for v in [5, 6, 7] {
            service.ingest(insert_p(v)).unwrap();
            service.recv_report().unwrap().unwrap();
        }
        let engine = service.shutdown().unwrap();
        let expect = engine.report().triples.clone();

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(2)),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        // The round-2 snapshot took; only round 3 replays from the log.
        assert_eq!(info.snapshot_epoch, 2);
        assert_eq!(info.replayed_rounds, 1);
        assert_eq!(info.durable_rounds, 3);
        assert!(info.clean_shutdown);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.report().triples, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_snapshot_command_advances_the_recovery_epoch() {
        let dir = tmpdir("snap-cmd");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        service.ingest(insert_p(5)).unwrap();
        service.recv_report().unwrap().unwrap();
        service.snapshot().unwrap();
        service.recv_report().unwrap().unwrap();
        service.ingest(insert_p(6)).unwrap();
        service.recv_report().unwrap().unwrap();
        drop(service); // shutdown-less drop still drains + marks clean

        let (service, info) = MaintenanceService::recover(
            DurabilityOptions::new(&dir),
            InFine::default(),
            view(),
            VacuumPolicy::default(),
        )
        .unwrap();
        // The snapshot command ran as round 2 (an empty flush round).
        assert_eq!(info.snapshot_epoch, 2);
        assert_eq!(info.replayed_rounds, 1);
        assert_eq!(info.durable_rounds, 3);
        let recovered = service.shutdown().unwrap();
        assert_eq!(recovered.database().expect("p").nrows(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn respawn_refuses_live_workers_and_non_durable_services() {
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut plain = MaintenanceService::spawn(engine);
        assert!(matches!(
            plain.respawn(),
            Err(MaintenanceError::Durability(_))
        ));
        plain.shutdown().unwrap();

        let dir = tmpdir("respawn-live");
        let engine = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut service = MaintenanceService::spawn_durable(
            engine,
            VacuumPolicy::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        assert!(matches!(
            service.respawn(),
            Err(MaintenanceError::Durability(_))
        ));
        service.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
