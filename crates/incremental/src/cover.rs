//! Incremental maintenance of a relation's minimal FD cover.
//!
//! [`CoverState`] keeps, for one (possibly attribute-restricted) relation:
//! the canonical minimal FD cover (every subset-minimal valid FD, as a
//! complete level-wise miner would produce it) and the partitions backing
//! it — all singletons plus `π_lhs` for every held FD.
//!
//! [`CoverState::maintain`] brings both across a
//! [`Relation::apply_delta`](infine_relation::Relation::apply_delta)
//! version change:
//!
//! * partitions are patched ([`rebase_plis`]), never rebuilt;
//! * held FDs are revalidated only against the *dirty* classes of their
//!   lhs partition, and only when the batch inserted rows (deletes can
//!   never break an FD — validity is anti-monotone in rows);
//! * FDs broken by inserts are replaced through a seeded upward lattice
//!   walk ([`extend_seeds`]) — after an insert-only batch every newly
//!   minimal FD is a strict superset of a broken one;
//! * FDs surfaced by deletes are recovered by the shared level-wise miner
//!   with the surviving set as its pruning `known` input (the machinery
//!   of the paper's Algorithm 2, reused verbatim).
//!
//! The same state machine serves the engine's per-base-table FD sets and
//! the materialized-view cover of the fast path.

use infine_discovery::{extend_seeds, mine_new_fds_with, Algorithm, Fd, FdSet, Validity};
use infine_partitions::{rebase_plis, Pli, PliCache};
use infine_relation::{AppliedDelta, AttrSet, Relation};
use std::collections::{HashMap, HashSet};

/// Accounting for one [`CoverState::maintain`] round.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverDeltaStats {
    /// FDs held before the round.
    pub held: usize,
    /// Held FDs broken by inserted rows.
    pub broken: usize,
    /// Minimal FDs recovered by the seeded upward walk.
    pub recovered: usize,
    /// Minimal FDs surfaced by the delete-path miner.
    pub surfaced: usize,
    /// Partitions patched in place.
    pub plis_patched: usize,
    /// Partitions evicted (recomputed on demand later).
    pub plis_evicted: usize,
    /// Dirty equivalence classes across all patched partitions.
    pub dirty_classes: usize,
    /// Delete-path candidates rejected in O(1) by a surviving violation
    /// witness (no partition work at all).
    pub witness_hits: usize,
    /// Delete-path candidates that needed real partition validation.
    pub witness_misses: usize,
}

/// A maintained minimal FD cover over `attrs` of one relation.
#[derive(Debug)]
pub struct CoverState {
    /// Attribute universe the cover ranges over (mining never leaves it).
    pub attrs: AttrSet,
    /// The canonical minimal cover: every subset-minimal valid FD.
    pub fds: FdSet,
    /// Maintained partitions: singletons plus `π_lhs` per held FD.
    plis: HashMap<AttrSet, Pli>,
    /// One violating row pair per known-invalid candidate. Surviving rows
    /// keep their dictionary codes across deltas, so as long as both rows
    /// are alive the pair still *proves* invalidity — which turns the
    /// delete-path lattice walk's re-validations into O(1) lookups.
    /// Remapped (and pruned) through every delete batch.
    witnesses: HashMap<Fd, (u32, u32)>,
}

impl CoverState {
    /// Mine the full cover from scratch and seed the partition state.
    pub fn bootstrap(rel: &Relation, attrs: AttrSet, algorithm: Algorithm) -> CoverState {
        let fds = algorithm.discover_restricted(rel, attrs);
        let mut state = CoverState {
            attrs,
            fds,
            plis: HashMap::new(),
            witnesses: HashMap::new(),
        };
        state.settle(rel);
        state
    }

    /// Rebuild a state from a persisted cover without re-mining: the
    /// snapshot layer stores `fds` (mined before the crash and pinned
    /// current by the WAL replay contract), and [`CoverState::settle`]
    /// recomputes the backing partitions from the relation. Witnesses
    /// start empty — they are a cache of *proofs*, rebuilt lazily as
    /// rounds run, and their absence never changes any verdict.
    pub fn restore(rel: &Relation, attrs: AttrSet, fds: FdSet) -> CoverState {
        let mut state = CoverState {
            attrs,
            fds,
            plis: HashMap::new(),
            witnesses: HashMap::new(),
        };
        state.settle(rel);
        state
    }

    /// Bring the cover across `old relation → new_rel` as described by
    /// `applied`. Returns the round's accounting.
    pub fn maintain(&mut self, new_rel: &Relation, applied: &AppliedDelta) -> CoverDeltaStats {
        let mut stats = CoverDeltaStats {
            held: self.fds.len(),
            ..CoverDeltaStats::default()
        };

        // Patch the partitions backing the held cover; evict the rest.
        let held_lhs: HashSet<AttrSet> = self.fds.iter().map(|fd| fd.lhs).collect();
        let (plis, dirty, rebase) =
            rebase_plis(std::mem::take(&mut self.plis), new_rel, applied, |set| {
                set.len() <= 1 || held_lhs.contains(&set)
            });
        stats.plis_patched = rebase.patched;
        stats.plis_evicted = rebase.evicted;
        stats.dirty_classes = rebase.dirty_classes;
        let mut cache = PliCache::from_map(new_rel, plis);

        // Carry violation witnesses across the version change: remap the
        // row ids; pairs losing a row no longer prove anything.
        if applied.num_deleted() > 0 {
            self.witnesses.retain(|_, pair| {
                match (
                    applied.remap[pair.0 as usize],
                    applied.remap[pair.1 as usize],
                ) {
                    (Some(a), Some(b)) => {
                        *pair = (a, b);
                        true
                    }
                    _ => false,
                }
            });
        }

        // Revalidate held FDs over dirty classes only (insert batches).
        // Each check runs the counting kernel against a patched lhs
        // partition and the rhs code column — no shared mutable state —
        // so the held set fans out over the `infine-exec` pool, one task
        // per FD, with verdicts collected in canonical FD order (the
        // sequential path sees the exact same verdicts, so survivors,
        // witnesses, and the final cover are identical). The kernel's
        // early exit yields each broken FD's violating pair as a
        // by-product; no separate witness scan runs.
        let mut survivors = FdSet::new();
        let mut broken: Vec<Fd> = Vec::new();
        if applied.num_inserted() == 0 {
            survivors = self.fds.clone();
        } else {
            let held: Vec<Fd> = self.fds.to_sorted_vec();
            // The rebase predicate kept every held lhs partition; compute
            // any defensively-missing one here so the parallel region is
            // read-only on the cache.
            for fd in &held {
                cache.get(fd.lhs);
            }
            let cache_ref = &cache;
            let verdicts: Vec<Option<(u32, u32)>> = infine_exec::par_map(&held, |_, fd| {
                let pli = cache_ref.peek(fd.lhs).expect("made resident above");
                let codes = &new_rel.column(fd.rhs).codes;
                let verdict = match dirty.get(&fd.lhs) {
                    // The FD held before the batch, so violations can only
                    // live in dirty classes — the restricted scan is
                    // complete and surfaces the same witnessing pair.
                    Some(d) => pli.refines_on(d.risky(), codes),
                    // lhs partition was not maintained (defensive): full check.
                    None => pli.refines_with(codes),
                };
                verdict.violating_pair()
            });
            for (&fd, witness) in held.iter().zip(verdicts) {
                match witness {
                    None => {
                        survivors.insert_minimal(fd);
                    }
                    Some(pair) => {
                        // Keep the pair so later delete rounds reject the
                        // candidate in O(1).
                        self.witnesses.insert(fd, pair);
                        broken.push(fd);
                    }
                }
            }
        }
        stats.broken = broken.len();

        // Targeted re-mining.
        let mut fds = survivors.clone();
        if !broken.is_empty() {
            let recovered = {
                let mut validity = WitnessValidity {
                    cache: &mut cache,
                    witnesses: &mut self.witnesses,
                    hits: 0,
                    misses: 0,
                };
                let found = extend_seeds(&mut validity, self.attrs, &broken, &survivors);
                stats.witness_hits += validity.hits;
                stats.witness_misses += validity.misses;
                found
            };
            stats.recovered = recovered.len();
            fds.extend_minimal(&recovered);
        }
        if applied.num_deleted() > 0 {
            // Delete path: new FDs can appear anywhere below the
            // surviving frontier; reuse the level-wise miner with `fds`
            // as its pruning `known` set. Candidates whose violation
            // witness survived the batch are rejected without touching a
            // partition, so the walk's cost tracks the delta, not the
            // lattice.
            let mut validity = WitnessValidity {
                cache: &mut cache,
                witnesses: &mut self.witnesses,
                hits: 0,
                misses: 0,
            };
            let surfaced = mine_new_fds_with(&mut validity, new_rel, self.attrs, &fds, None);
            stats.witness_hits += validity.hits;
            stats.witness_misses += validity.misses;
            stats.surfaced = surfaced.len();
            fds.extend_minimal(&surfaced);
        }

        self.plis = cache.into_map();
        self.fds = fds;
        self.settle(new_rel);
        stats
    }

    /// Carry the state across a pure monotone row remap — the
    /// [`Relation::vacuum`](infine_relation::Relation::vacuum) move.
    /// Membership is unchanged (the remap only renumbers live rows), so
    /// partitions are patched id-for-id, witnesses are renumbered, and
    /// the cover itself is untouched: no revalidation, no mining.
    pub fn rebase_rows(&mut self, new_rel: &Relation, applied: &AppliedDelta) {
        debug_assert_eq!(applied.num_inserted(), 0, "rebase_rows is remap-only");
        let (plis, _, _) = rebase_plis(std::mem::take(&mut self.plis), new_rel, applied, |_| true);
        self.plis = plis;
        self.witnesses.retain(|_, pair| {
            match (
                applied.remap[pair.0 as usize],
                applied.remap[pair.1 as usize],
            ) {
                (Some(a), Some(b)) => {
                    *pair = (a, b);
                    true
                }
                _ => false,
            }
        });
    }

    /// Soak/debug hook: panic unless this state equals a from-scratch
    /// bootstrap on `rel` — the cover matches a fresh levelwise mine,
    /// every backing partition matches a rebuild, and every cached
    /// witness names a live, genuinely violating pair. O(full mine);
    /// tests and soak suites only.
    pub fn self_check(&self, rel: &Relation) {
        let fresh = infine_discovery::mine_fds(rel, self.attrs);
        assert!(
            infine_discovery::same_fds(&self.fds, &fresh),
            "cover diverged from fresh mine:\n{:?}\nvs\n{:?}",
            self.fds.to_sorted_vec(),
            fresh.to_sorted_vec()
        );
        for (&set, pli) in &self.plis {
            assert_eq!(
                *pli,
                infine_partitions::Pli::for_set(rel, set),
                "partition {set:?} diverged from rebuild"
            );
        }
        for (fd, pair) in &self.witnesses {
            let (i, j) = (pair.0 as usize, pair.1 as usize);
            assert!(
                rel.is_live(i) && rel.is_live(j),
                "witness for {fd:?} references a dead row"
            );
            assert!(
                fd.lhs.iter().all(|a| rel.code(i, a) == rel.code(j, a))
                    && rel.code(i, fd.rhs) != rel.code(j, fd.rhs),
                "witness for {fd:?} does not violate"
            );
        }
    }

    /// (Re)compute partitions for every held FD lhs and drop partitions
    /// backing nothing — the eviction side of the cache contract.
    fn settle(&mut self, rel: &Relation) {
        let wanted: HashSet<AttrSet> = self.fds.iter().map(|fd| fd.lhs).collect();
        let mut cache = PliCache::from_map(rel, std::mem::take(&mut self.plis));
        for &set in &wanted {
            cache.get(set);
        }
        let mut map = cache.into_map();
        map.retain(|set, _| set.len() <= 1 || wanted.contains(set));
        self.plis = map;
    }
}

/// Validity oracle that consults (and feeds) the violation-witness cache
/// before doing any partition work. Misses run the counting kernel
/// through [`PliCache::check_witness`] — π_lhs only, no product — and the
/// kernel's early-exit pair becomes the new witness.
struct WitnessValidity<'a, 'r> {
    cache: &'a mut PliCache<'r>,
    witnesses: &'a mut HashMap<Fd, (u32, u32)>,
    hits: usize,
    misses: usize,
}

impl Validity for WitnessValidity<'_, '_> {
    fn holds(&mut self, lhs: AttrSet, rhs: usize) -> bool {
        let fd = Fd::new(lhs, rhs);
        if self.witnesses.contains_key(&fd) {
            self.hits += 1;
            return false;
        }
        self.misses += 1;
        match self.cache.check_witness(lhs, rhs) {
            Some(pair) => {
                self.witnesses.insert(fd, pair);
                false
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_discovery::{mine_fds, same_fds};
    use infine_relation::{relation_from_rows, DeltaBatch, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0)],
                &[Value::Int(2), Value::Int(10), Value::Int(0)],
                &[Value::Int(3), Value::Int(20), Value::Int(1)],
                &[Value::Int(4), Value::Int(20), Value::Int(1)],
            ],
        )
    }

    fn assert_cover_current(state: &CoverState, rel: &Relation) {
        let fresh = mine_fds(rel, state.attrs);
        assert!(
            same_fds(&state.fds, &fresh),
            "cover diverged:\n{:?}\nvs fresh\n{:?}",
            state.fds.to_sorted_vec(),
            fresh.to_sorted_vec()
        );
    }

    #[test]
    fn bootstrap_equals_full_mine() {
        let r = rel();
        let state = CoverState::bootstrap(&r, r.attr_set(), Algorithm::Levelwise);
        assert_cover_current(&state, &r);
    }

    #[test]
    fn inserts_break_and_recover() {
        let r = rel();
        let mut state = CoverState::bootstrap(&r, r.attr_set(), Algorithm::Levelwise);
        // break b → c (and a stays a key)
        let mut batch = DeltaBatch::new();
        batch.insert(vec![Value::Int(5), Value::Int(10), Value::Int(7)]);
        let (r2, applied) = r.apply_delta(&batch, "t");
        let stats = state.maintain(&r2, &applied);
        assert!(stats.broken > 0);
        assert_cover_current(&state, &r2);
    }

    #[test]
    fn deletes_surface_new_fds() {
        let r = rel();
        let mut state = CoverState::bootstrap(&r, r.attr_set(), Algorithm::Levelwise);
        // delete the b=20 group: b,c become constants
        let mut batch = DeltaBatch::new();
        batch.delete(2).delete(3);
        let (r2, applied) = r.apply_delta(&batch, "t");
        let stats = state.maintain(&r2, &applied);
        assert_eq!(stats.broken, 0);
        assert!(stats.surfaced > 0);
        assert_cover_current(&state, &r2);
    }

    #[test]
    fn restricted_attrs_stay_restricted() {
        let r = rel();
        let attrs: AttrSet = [0usize, 1].into_iter().collect();
        let mut state = CoverState::bootstrap(&r, attrs, Algorithm::Levelwise);
        let mut batch = DeltaBatch::new();
        batch
            .insert(vec![Value::Int(1), Value::Int(30), Value::Int(9)])
            .delete(0);
        let (r2, applied) = r.apply_delta(&batch, "t");
        state.maintain(&r2, &applied);
        for fd in state.fds.iter() {
            assert!(fd.attrs().is_subset(attrs));
        }
        assert_cover_current(&state, &r2);
    }

    #[test]
    fn chained_random_rounds_stay_current() {
        let mut r = rel();
        let mut state = CoverState::bootstrap(&r, r.attr_set(), Algorithm::Levelwise);
        let batches: Vec<DeltaBatch> = vec![
            {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(9), Value::Int(20), Value::Int(0)]);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(0).delete(4);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(1)
                    .insert(vec![Value::Int(2), Value::Int(20), Value::Int(1)])
                    .insert(vec![Value::Int(2), Value::Int(10), Value::Int(1)]);
                b
            },
        ];
        for batch in batches {
            let (r2, applied) = r.apply_delta(&batch, "t");
            state.maintain(&r2, &applied);
            assert_cover_current(&state, &r2);
            r = r2;
        }
    }
}
