//! Serialization round-trip property tests and the corruption matrix
//! (satellite of the durability PR).
//!
//! Round trips: `Relation` / `Database` / `DeltaBatch` encode→decode ==
//! identity on datagen-generated values — including empty batches,
//! multi-table rounds, and tombstoned relations — pinned the strong way:
//! re-encoding the decoded value reproduces the original bytes, so the
//! codec has exactly one representation per value.
//!
//! Corruption: single-bit flips across a durable directory's snapshot
//! (header, body, CRC) and commitlog (record frames, payloads, torn
//! truncations) must be *detected* — recovery either succeeds on intact
//! redundancy (older snapshot, salvaged log prefix) or fails with an
//! error, but never panics and never silently resurrects damaged state.

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_durability::failpoint::SNAPSHOT_WRITE;
use infine_durability::{FailPoints, SnapshotPolicy, KEEP_SNAPSHOTS};
use infine_incremental::{DurabilityOptions, MaintenanceService, ShardedEngine, VacuumPolicy};
use infine_relation::wire::{self, Reader, Writer};
use infine_relation::{relation_from_rows, Database, DeltaRelation, DictIndexes, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: [&str; 4] = [
    "tpch_q2",
    "mimic_q_patients_admissions",
    "ptc_connected_bond",
    "pte_atm_drug",
];

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "infine-durmx-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn encode_db(db: &Database) -> Vec<u8> {
    let mut w = Writer::new();
    wire::write_database(&mut w, db);
    w.into_bytes()
}

#[test]
fn database_round_trip_is_identity_on_datagen_values() {
    for case_id in CASES {
        let case = find(case_id).unwrap();
        let db = case.dataset.generate(Scale::of(0.002));
        let bytes = encode_db(&db);
        let mut r = Reader::new(&bytes);
        let decoded = wire::read_database(&mut r).unwrap();
        assert!(r.is_empty(), "{case_id}: trailing bytes");
        // One representation per value: the decode re-encodes verbatim.
        assert_eq!(encode_db(&decoded), bytes, "{case_id}: re-encode diverged");
        for name in db.names() {
            let (a, b) = (db.expect(name), decoded.expect(name));
            assert_eq!(a.nrows(), b.nrows(), "{case_id}/{name}");
            for row in 0..a.nrows() {
                assert_eq!(a.row(row), b.row(row), "{case_id}/{name} row {row}");
            }
        }
    }
}

#[test]
fn tombstoned_relations_round_trip_dead_rows_and_dictionaries() {
    let case = find("tpch_q2").unwrap();
    let db = case.dataset.generate(Scale::of(0.002));
    let mut rng = StdRng::seed_from_u64(0xD0_0D);
    for name in db.names() {
        let rel = db.expect(name).clone();
        let max = (rel.nrows() / 10).max(2);
        let (ndel, nins) = (rng.gen_range(1..=max), rng.gen_range(0..=max));
        let batch = random_delta(&mut rng, &rel, ndel, nins);
        let mut index = DictIndexes::build(&rel);
        let (tombstoned, _) =
            rel.apply_delta_tombstoned(&batch.deletes, &batch.inserts, name, &mut index);
        assert!(
            tombstoned.tombstone_count() > 0,
            "{name}: no dead rows to test"
        );

        let mut w = Writer::new();
        wire::write_relation(&mut w, &tombstoned);
        let bytes = w.into_bytes();
        let decoded = wire::read_relation(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(
            decoded.tombstone_count(),
            tombstoned.tombstone_count(),
            "{name}: tombstones lost"
        );
        for row in 0..tombstoned.nrows() {
            assert_eq!(
                decoded.is_live(row),
                tombstoned.is_live(row),
                "{name} row {row}"
            );
        }
        let mut w2 = Writer::new();
        wire::write_relation(&mut w2, &decoded);
        assert_eq!(w2.into_bytes(), bytes, "{name}: re-encode diverged");
    }
}

#[test]
fn delta_rounds_round_trip_including_empty_and_multi_table_batches() {
    let case = find("mimic_q_patients_admissions").unwrap();
    let db = case.dataset.generate(Scale::of(0.002));
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();
    for _ in 0..50 {
        // A multi-table round with an always-present empty batch.
        let mut round: Vec<DeltaRelation> = vec![DeltaRelation::new(
            tables[0].clone(),
            infine_relation::DeltaBatch::new(),
        )];
        for t in &tables {
            let rel = db.expect(t);
            let max = (rel.nrows() / 10).max(2);
            let (ndel, nins) = (rng.gen_range(0..=max), rng.gen_range(0..=max));
            round.push(DeltaRelation::new(
                t.clone(),
                random_delta(&mut rng, rel, ndel, nins),
            ));
        }
        let mut w = Writer::new();
        w.u32(round.len() as u32);
        for d in &round {
            wire::write_delta_relation(&mut w, d);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let n = r.u32().unwrap() as usize;
        assert_eq!(n, round.len());
        for want in &round {
            let got = wire::read_delta_relation(&mut r).unwrap();
            assert_eq!(got.target, want.target);
            assert_eq!(got.batch.deletes, want.batch.deletes);
            assert_eq!(got.batch.inserts, want.batch.inserts);
        }
        assert!(r.is_empty());
    }
}

#[test]
fn truncated_payloads_error_and_never_panic() {
    let case = find("pte_atm_drug").unwrap();
    let db = case.dataset.generate(Scale::of(0.002));
    let bytes = encode_db(&db);
    // Every proper prefix either errors or (for a prefix that happens to
    // be a complete database encoding) decodes — but must never panic.
    for cut in 0..bytes.len() {
        let mut r = Reader::new(&bytes[..cut]);
        let _ = wire::read_database(&mut r);
    }
    // Bit flips across a stride: decode must not panic; if it succeeds,
    // the payload must still satisfy the codec's own invariants, which
    // re-encoding checks.
    for i in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x10;
        let mut r = Reader::new(&corrupt);
        if let Ok(decoded) = wire::read_database(&mut r) {
            let _ = encode_db(&decoded);
        }
    }
}

/// A tiny two-table view for the on-disk matrix (fast enough to run
/// `recover` hundreds of times).
fn small_db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "p",
        &["pid", "grp", "flag"],
        &[
            &[Value::Int(1), Value::str("a"), Value::Int(0)],
            &[Value::Int(2), Value::str("a"), Value::Int(0)],
            &[Value::Int(3), Value::str("b"), Value::Int(1)],
            &[Value::Int(4), Value::str("b"), Value::Int(1)],
        ],
    ));
    db.insert(relation_from_rows(
        "q",
        &["pid", "site"],
        &[
            &[Value::Int(1), Value::str("x")],
            &[Value::Int(2), Value::str("x")],
            &[Value::Int(3), Value::str("y")],
        ],
    ));
    db
}

fn small_view() -> infine_algebra::ViewSpec {
    infine_algebra::ViewSpec::base("p").inner_join(infine_algebra::ViewSpec::base("q"), &["pid"])
}

/// Build a durable directory with two retained snapshots and a log
/// suffix, and return the expected triples.
fn seeded_dir(tag: &str) -> (std::path::PathBuf, Vec<infine_core::ProvenanceTriple>) {
    let dir = tmpdir(tag);
    let engine = ShardedEngine::new(InFine::default(), small_db(), small_view(), 2).unwrap();
    let service = MaintenanceService::spawn_durable(
        engine,
        VacuumPolicy::default(),
        DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(2)),
    )
    .unwrap();
    for v in [5, 6, 7, 8, 9] {
        let mut b = infine_relation::DeltaBatch::new();
        b.insert(vec![Value::Int(v), Value::str("c"), Value::Int(2)]);
        service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
        service.recv_report().unwrap().unwrap();
    }
    let engine = service.shutdown().unwrap();
    (dir, engine.report().triples.clone())
}

/// `INFINE_MATRIX_INJECT=1` reruns the whole on-disk matrix with one
/// transient I/O error armed on every recovery's snapshot
/// republication: the retry policy must absorb it silently, so the
/// matrix verdicts — detected, survived-exactly, never-panicked — are
/// byte-for-byte the same as the unfaulted pass.
fn inject_options(scratch: &std::path::Path) -> DurabilityOptions {
    let options = DurabilityOptions::new(scratch);
    if std::env::var("INFINE_MATRIX_INJECT").is_ok_and(|v| !v.is_empty() && v != "0") {
        let mut fp = FailPoints::none();
        fp.arm_err(SNAPSHOT_WRITE, 1, 1, true);
        options.failpoints(fp)
    } else {
        options
    }
}

fn try_recover(dir: &std::path::Path) -> Result<Vec<infine_core::ProvenanceTriple>, String> {
    // Recover into a scratch copy: recovery republishes snapshots and
    // rotates the log, which would heal the corruption under test.
    let scratch = tmpdir("scratch");
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, scratch.join(p.file_name().unwrap())).unwrap();
    }
    let out = MaintenanceService::recover(
        inject_options(&scratch),
        InFine::default(),
        small_view(),
        VacuumPolicy::default(),
    )
    .map_err(|e| e.to_string())
    .map(|(service, _)| service.shutdown().unwrap().report().triples.clone());
    std::fs::remove_dir_all(&scratch).unwrap();
    out
}

#[test]
fn on_disk_corruption_is_detected_or_survived_never_panicking() {
    let (dir, want) = seeded_dir("bitflip");
    let files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        files.len() > KEEP_SNAPSHOTS,
        "expected retained snapshots + log, got {files:?}"
    );
    assert_eq!(try_recover(&dir).unwrap(), want, "pristine recovery");
    for path in &files {
        let pristine = std::fs::read(path).unwrap();
        // Single-bit flips on a stride (headers and CRCs land on every
        // file's early bytes; the stride sweeps bodies too).
        for i in (0..pristine.len()).step_by(11) {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= 0x04;
            std::fs::write(path, &corrupt).unwrap();
            if let Ok(triples) = try_recover(&dir) {
                // Survived via redundancy (older snapshot / salvaged
                // prefix + replay): the answer must still be exact.
                assert_eq!(
                    triples,
                    want,
                    "{}: flip at {i} changed the answer",
                    path.display()
                );
            }
        }
        // Truncations, including an empty file.
        for cut in [0, 1, pristine.len() / 2, pristine.len().saturating_sub(3)] {
            std::fs::write(path, &pristine[..cut]).unwrap();
            if let Ok(triples) = try_recover(&dir) {
                assert_eq!(
                    triples,
                    want,
                    "{}: truncation at {cut} changed the answer",
                    path.display()
                );
            }
        }
        std::fs::write(path, &pristine).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn destroyed_newest_snapshot_falls_back_and_replays_the_longer_suffix() {
    let (dir, want) = seeded_dir("fallback");
    // Find the newest snapshot file and wreck its body wholesale.
    let mut snaps: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("snap-")
        })
        .collect();
    snaps.sort();
    assert_eq!(snaps.len(), KEEP_SNAPSHOTS);
    let newest = snaps.last().unwrap();
    let len = std::fs::metadata(newest).unwrap().len() as usize;
    std::fs::write(newest, vec![0xAB; len]).unwrap();

    let (service, info) = MaintenanceService::recover(
        DurabilityOptions::new(&dir),
        InFine::default(),
        small_view(),
        VacuumPolicy::default(),
    )
    .unwrap();
    assert!(
        info.warnings.iter().any(|w| w.contains("skipped")),
        "fallback must be loud: {:?}",
        info.warnings
    );
    assert_eq!(info.durable_rounds, 5);
    let recovered = service.shutdown().unwrap();
    assert_eq!(recovered.report().triples, want);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A newest snapshot that cannot even be *read* (I/O error, not a
/// checksum miss) is skipped like corruption, not a recovery abort: an
/// older snapshot plus the longer log suffix still has everything.
/// Simulated by replacing the file with a same-named directory, which
/// fails `fs::read` with EISDIR even when the tests run as root (unlike
/// a permissions trick).
#[test]
fn unreadable_newest_snapshot_falls_back_and_replays_the_longer_suffix() {
    let (dir, want) = seeded_dir("unreadable");
    let mut snaps: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("snap-")
        })
        .collect();
    snaps.sort();
    assert_eq!(snaps.len(), KEEP_SNAPSHOTS);
    let newest = snaps.last().unwrap();
    std::fs::remove_file(newest).unwrap();
    std::fs::create_dir(newest).unwrap();

    let (service, info) = MaintenanceService::recover(
        DurabilityOptions::new(&dir),
        InFine::default(),
        small_view(),
        VacuumPolicy::default(),
    )
    .unwrap();
    assert!(
        info.warnings.iter().any(|w| w.contains("skipped")),
        "unreadable fallback must be loud: {:?}",
        info.warnings
    );
    assert_eq!(info.durable_rounds, 5);
    let recovered = service.shutdown().unwrap();
    assert_eq!(recovered.report().triples, want);
    std::fs::remove_dir_all(&dir).unwrap();
}
