//! Equivalence (satellite of the incremental-maintenance PR): after N
//! random delta rounds, the maintenance engine's FD cover must equal what
//! a full `InFine::discover` finds on the materialized final database —
//! not just logically, but triple-for-triple — across the TPC-H and
//! PTC/PTE catalog views.

use infine_algebra::execute;
use infine_core::InFine;
use infine_datagen::{catalog_for, random_churn, DatasetKind, Scale};
use infine_discovery::{same_fds, tane, Fd, FdSet};
use infine_incremental::{MaintenanceEngine, MaintenanceMode};
use infine_relation::AttrSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: usize = 3;
const CHURN: f64 = 0.05;

fn run_dataset(kind: DatasetKind, seed: u64) {
    let scale = Scale::of(0.003);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in catalog_for(kind) {
        let db = kind.generate(scale);
        let mut engine = match MaintenanceEngine::new(InFine::default(), db, case.spec.clone()) {
            Ok(e) => e,
            Err(e) => panic!("{}: engine bootstrap failed: {e}", case.id),
        };
        let tables: Vec<String> = case
            .spec
            .base_tables()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut last_fd_set = None;
        for round in 0..ROUNDS {
            let target = &tables[round % tables.len()];
            let delta = random_churn(&mut rng, engine.database().expect(target), CHURN);
            let report = engine
                .apply_one(&delta)
                .unwrap_or_else(|e| panic!("{}: apply {round} failed: {e}", case.id));
            // Bookkeeping invariants: every held FD got a status, and
            // fresh + surviving = new cover.
            let surviving = report
                .held
                .iter()
                .filter(|(_, s)| *s != infine_incremental::FdStatus::Invalidated)
                .count();
            assert_eq!(surviving + report.fresh.len(), report.cover.len());
            assert!(report.exact_provenance);
            last_fd_set = Some(report.fd_set());
        }

        // After N rounds of maintenance the engine's cover equals full
        // re-discovery on the final database — triple-for-triple, not
        // just up to implication.
        let full = InFine::default()
            .discover(engine.database(), &case.spec)
            .unwrap_or_else(|e| panic!("{}: full discover failed: {e}", case.id));
        assert_eq!(
            engine.report().triples,
            full.triples,
            "{}: incremental ≠ full re-discovery after {ROUNDS} rounds",
            case.id
        );
        assert!(
            same_fds(&last_fd_set.expect("ROUNDS > 0"), &full.fd_set()),
            "{}: minimal covers differ",
            case.id
        );
    }
}

#[test]
fn tpch_views_stay_equivalent_under_deltas() {
    run_dataset(DatasetKind::Tpch, 0x7C_0001);
}

#[test]
fn ptc_views_stay_equivalent_under_deltas() {
    run_dataset(DatasetKind::Ptc, 0x7C_0002);
}

#[test]
fn pte_views_stay_equivalent_under_deltas() {
    run_dataset(DatasetKind::Pte, 0x7C_0003);
}

#[test]
fn mimic_view_stays_equivalent_under_deltas() {
    // Not required by the satellite, but MIMIC exercises selections and
    // outer joins in the catalog; keep it covered at a smaller scale.
    run_dataset(DatasetKind::Mimic, 0x7C_0004);
}

/// Cover-only fast path: after N random delta rounds on every
/// fast-path-capable catalog view, the maintained cover must equal the
/// *canonical* minimal cover of the materialized final view (TANE
/// oracle), exactly — and be logically equivalent to a full
/// `InFine::discover`.
fn run_dataset_cover_only(kind: DatasetKind, seed: u64) {
    let scale = Scale::of(0.003);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in catalog_for(kind) {
        let db = kind.generate(scale);
        let mut engine = MaintenanceEngine::with_mode(
            InFine::default(),
            db,
            case.spec.clone(),
            MaintenanceMode::CoverOnly,
        )
        .unwrap_or_else(|e| panic!("{}: bootstrap failed: {e}", case.id));
        if !engine.supports_cover_fast_path() {
            continue; // outer joins / repeated tables fall back (covered above)
        }
        let tables: Vec<String> = case
            .spec
            .base_tables()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut schema = None;
        for round in 0..ROUNDS {
            let target = &tables[round % tables.len()];
            let delta = random_churn(&mut rng, engine.database().expect(target), CHURN);
            let report = engine
                .apply_one(&delta)
                .unwrap_or_else(|e| panic!("{}: apply {round} failed: {e}", case.id));
            assert!(!report.exact_provenance);
            schema = Some(report.schema);
        }
        let schema = schema.expect("ROUNDS > 0");

        // Canonical-cover oracle on the materialized final view.
        let view = execute(&case.spec, engine.database())
            .unwrap_or_else(|e| panic!("{}: view execution failed: {e}", case.id));
        let canonical = tane(&view, view.attr_set());
        let map: Vec<usize> = (0..schema.len())
            .map(|i| view.schema.expect_id(schema.name(i)))
            .collect();
        let remapped = engine
            .fd_set()
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                    map[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_minimal(fd);
                s
            });
        assert!(
            same_fds(&remapped, &canonical),
            "{}: fast-path cover ≠ canonical cover of the final view",
            case.id
        );
        // ... and logically equivalent to full pipeline re-discovery.
        let full = InFine::default()
            .discover(engine.database(), &case.spec)
            .unwrap();
        let full_map: Vec<usize> = (0..schema.len())
            .map(|i| full.schema.expect_id(schema.name(i)))
            .collect();
        let full_aligned = engine
            .fd_set()
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| full_map[a]).collect::<AttrSet>(),
                    full_map[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_unchecked(fd);
                s
            });
        assert!(
            full_aligned.equivalent(&full.fd_set()),
            "{}: fast-path cover not equivalent to full re-discovery",
            case.id
        );
    }
}

#[test]
fn tpch_cover_only_matches_canonical() {
    run_dataset_cover_only(DatasetKind::Tpch, 0x7C_0011);
}

#[test]
fn ptc_cover_only_matches_canonical() {
    run_dataset_cover_only(DatasetKind::Ptc, 0x7C_0012);
}

#[test]
fn pte_cover_only_matches_canonical() {
    run_dataset_cover_only(DatasetKind::Pte, 0x7C_0013);
}
