//! Golden catalog test: drive the full stack — discovery pipeline,
//! unsharded engine, sharded fleet, service loop, vacuum, one ad-hoc
//! span — inside one scoped registry, then pin the exposition's metric
//! names and types. Renaming, retyping, adding, or dropping a series is
//! a deliberate catalog change and must update this list (and the
//! catalog table in `crates/incremental/README.md`).

use infine_algebra::ViewSpec;
use infine_core::InFine;
use infine_incremental::{
    DeletePolicy, DurabilityOptions, MaintenanceEngine, MaintenanceService, ShardedEngine,
    VacuumPolicy, ViewMode,
};
use infine_incremental::{InsertPolicy, ShardRouter};
use infine_obs::Registry;
use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "p",
        &["pid", "grp", "flag"],
        &[
            &[Value::Int(1), Value::str("a"), Value::Int(0)],
            &[Value::Int(2), Value::str("a"), Value::Int(0)],
            &[Value::Int(3), Value::str("b"), Value::Int(1)],
            &[Value::Int(4), Value::str("b"), Value::Int(1)],
        ],
    ));
    db.insert(relation_from_rows(
        "q",
        &["pid", "site"],
        &[
            &[Value::Int(1), Value::str("x")],
            &[Value::Int(2), Value::str("x")],
            &[Value::Int(3), Value::str("y")],
            &[Value::Int(3), Value::str("y")],
        ],
    ));
    db
}

fn view() -> ViewSpec {
    ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
}

#[test]
fn metric_catalog_is_pinned() {
    let registry = Registry::scoped();
    let _scope = registry.enter();

    // Discovery: pipeline phase + miner + kernel + PLI cache series.
    InFine::default().discover(&db(), &view()).unwrap();

    // Unsharded engine round, with its per-round metrics delta.
    let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
    let mut b = DeltaBatch::new();
    b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
    let report = engine.apply_one(&DeltaRelation::new("p", b)).unwrap();
    assert!(
        report.metrics.kernel_checks() > 0,
        "a cover-revalidating round runs kernel checks:\n{}",
        report.metrics.to_json()
    );
    assert_eq!(
        report
            .metrics
            .get("infine_round_seconds_count{engine=\"maintenance\"}"),
        Some(1.0),
        "one apply call is one round observation"
    );

    // Sharded fleet behind a *durable* service loop (commitlog + one
    // explicit snapshot + a post-snapshot round that recovery replays,
    // so the WAL/snapshot/recovery series all carry traffic);
    // tombstoned deletes so the explicit vacuum reclaims rows; the
    // join-index view mode so the join-probe series register and count.
    let dir = std::env::temp_dir().join(format!(
        "infine-catalog-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let _ = ShardRouter::new(&db(), 2); // router alone registers nothing
    let sharded = ShardedEngine::with_options(
        InFine::default(),
        db(),
        view(),
        2,
        InsertPolicy::default(),
        DeletePolicy::Tombstone,
        ViewMode::JoinIndex,
    )
    .unwrap();
    let service = MaintenanceService::spawn_durable(
        sharded,
        VacuumPolicy::default(),
        DurabilityOptions::new(&dir),
    )
    .unwrap();
    let mut b = DeltaBatch::new();
    b.delete(0).delete(1);
    service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
    let report = service.recv_report().unwrap().unwrap();
    assert!(report.vacuum.is_none());
    service.vacuum().unwrap();
    let report = service.recv_report().unwrap().unwrap();
    assert!(report.vacuum.unwrap().rows_dropped > 0);
    service.snapshot().unwrap();
    service.recv_report().unwrap().unwrap();
    let mut b = DeltaBatch::new();
    b.insert(vec![Value::Int(9), Value::str("c"), Value::Int(2)]);
    service.ingest(vec![DeltaRelation::new("p", b)]).unwrap();
    service.recv_report().unwrap().unwrap();
    // The wait-free read path: reads + lag + publish series carry
    // traffic. The report above precedes the round's publish, so spin
    // until it lands (rounds: delete, vacuum, snapshot, insert = 4).
    let reader = service.reader();
    let t0 = std::time::Instant::now();
    while reader.current().round < 4 {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "round 4 never published"
        );
        std::thread::yield_now();
    }
    let stats = service.stats();
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.rounds_completed >= 2);
    assert!(stats.last_round > std::time::Duration::ZERO);
    assert!(stats.worker_alive);
    service.shutdown().unwrap();

    // Recovery replays the post-snapshot round through the round path.
    let (recovered, info) = MaintenanceService::recover(
        DurabilityOptions::new(&dir),
        InFine::default(),
        view(),
        VacuumPolicy::default(),
    )
    .unwrap();
    assert!(info.replayed_rounds >= 1);
    recovered.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    // One ad-hoc span pins the span series.
    drop(infine_obs::span("catalog_probe", &[]));

    // The catalog: every metric name and type, in exposition order.
    let render = registry.render();
    let types: Vec<&str> = render
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .collect();
    let expected = [
        "# TYPE infine_exec_inline_tasks_total counter",
        "# TYPE infine_exec_steals_total counter",
        "# TYPE infine_exec_tasks_total counter",
        "# TYPE infine_join_probe_early_exits_total counter",
        "# TYPE infine_join_probe_index_hops_total counter",
        "# TYPE infine_join_probe_probes_total counter",
        "# TYPE infine_kernel_checks_total counter",
        "# TYPE infine_kernel_early_exits_total counter",
        "# TYPE infine_kernel_products_avoided_total counter",
        "# TYPE infine_miner_level_seconds histogram",
        "# TYPE infine_miner_seconds histogram",
        "# TYPE infine_pipeline_phase_seconds histogram",
        "# TYPE infine_pipeline_seconds histogram",
        "# TYPE infine_pli_cache_evictions_total counter",
        "# TYPE infine_pli_cache_hits_total counter",
        "# TYPE infine_pli_cache_misses_total counter",
        "# TYPE infine_publish_seconds histogram",
        "# TYPE infine_read_round_lag gauge",
        "# TYPE infine_reads_total counter",
        "# TYPE infine_recovery_seconds histogram",
        "# TYPE infine_retry_attempts_total counter",
        "# TYPE infine_round_phase_seconds histogram",
        "# TYPE infine_round_seconds histogram",
        "# TYPE infine_service_batches_total counter",
        "# TYPE infine_service_breaker_state gauge",
        "# TYPE infine_service_coalesced_total counter",
        "# TYPE infine_service_degraded_rounds_total counter",
        "# TYPE infine_service_in_flight gauge",
        "# TYPE infine_service_queue_depth gauge",
        "# TYPE infine_service_rejected_total counter",
        "# TYPE infine_service_respawns_total counter",
        "# TYPE infine_service_round_seconds histogram",
        "# TYPE infine_service_rounds_total counter",
        "# TYPE infine_service_shed_total counter",
        "# TYPE infine_shard_fanout_shards histogram",
        "# TYPE infine_snapshot_prune_failures_total counter",
        "# TYPE infine_snapshot_seconds histogram",
        "# TYPE infine_span_seconds histogram",
        "# TYPE infine_vacuum_dict_entries_dropped_total counter",
        "# TYPE infine_vacuum_passes_total counter",
        "# TYPE infine_vacuum_rows_dropped_total counter",
        "# TYPE infine_wal_appends_total counter",
        "# TYPE infine_wal_bytes_total counter",
        "# TYPE infine_wal_replayed_rounds_total counter",
    ];
    assert_eq!(
        types, expected,
        "metric catalog drifted — update the catalog test AND the README table\n{render}"
    );

    // Key series carry real traffic, not just registrations.
    let snap = registry.snapshot();
    assert!(snap.total("infine_kernel_checks_total") > 0.0);
    assert!(snap.total("infine_pli_cache_misses_total") > 0.0);
    // Join-index rounds validate through the probe kernel: probes ran,
    // and every probe resolved codes through the join index.
    assert!(snap.total("infine_join_probe_probes_total") > 0.0);
    assert!(snap.total("infine_join_probe_index_hops_total") > 0.0);
    assert!(
        snap.get("infine_round_seconds_count{engine=\"sharded\"}")
            .unwrap()
            >= 2.0
    );
    assert!(snap.get("infine_service_rounds_total").unwrap() >= 2.0);
    assert!(snap.get("infine_service_batches_total").unwrap() >= 1.0);
    assert_eq!(snap.get("infine_service_queue_depth"), Some(0.0));
    assert!(snap.total("infine_vacuum_rows_dropped_total") > 0.0);
    assert!(snap.get("infine_pipeline_seconds_count").unwrap() >= 1.0);
    assert!(snap.total("infine_miner_seconds") >= 0.0);
    // Durability series: four logged rounds, one explicit snapshot cut,
    // one recovery that replayed the post-snapshot round. Respawns are
    // registered (catalog above) but idle — no worker died here.
    assert!(snap.get("infine_wal_appends_total").unwrap() >= 4.0);
    assert!(snap.get("infine_wal_bytes_total").unwrap() > 0.0);
    assert!(snap.get("infine_snapshot_seconds_count").unwrap() >= 1.0);
    assert!(snap.get("infine_recovery_seconds_count").unwrap() >= 1.0);
    assert!(snap.get("infine_wal_replayed_rounds_total").unwrap() >= 1.0);
    assert_eq!(snap.get("infine_service_respawns_total"), Some(0.0));
    // Read path: the reader above served at least the publishes it
    // polled for, each round's publish was timed, the final read saw a
    // fully caught-up snapshot, and no prune ever failed.
    assert!(snap.get("infine_reads_total").unwrap() >= 1.0);
    assert!(snap.get("infine_publish_seconds_count").unwrap() >= 4.0);
    assert_eq!(snap.get("infine_read_round_lag"), Some(0.0));
    assert_eq!(snap.get("infine_snapshot_prune_failures_total"), Some(0.0));
    // Overload/supervision series register but stay quiet on a healthy,
    // uncontended run: nothing shed, no retries, breaker closed, no
    // degraded rounds, and in-flight settled back to zero.
    assert_eq!(snap.get("infine_service_shed_total"), Some(0.0));
    assert_eq!(snap.get("infine_service_in_flight"), Some(0.0));
    assert_eq!(snap.get("infine_service_breaker_state"), Some(0.0));
    assert_eq!(snap.get("infine_service_degraded_rounds_total"), Some(0.0));
    assert_eq!(snap.get("infine_retry_attempts_total"), Some(0.0));
}
