//! Kill-and-recover soak (the durability tentpole's acceptance test):
//! for every crash site the fault-injection layer knows — before a WAL
//! append, mid-append with a torn record on disk, after the snapshot
//! temp write but before the rename, after a round commits but before
//! its report — arm the failpoint, drive ≥20 seeded churn rounds through
//! a durable [`MaintenanceService`], let the worker die, respawn it from
//! snapshot + commitlog, re-feed exactly the rounds [`RecoveryInfo`]
//! says were lost, and pin the recovered state **equal to a
//! never-crashed run of the same stream**: provenance triples, merged
//! cover, tombstone accounting, per-table row payloads, and the full
//! report of one extra probe round — on one representative view of each
//! of the four datagen databases at 1, 2, and 4 shards.
//!
//! Scale via `INFINE_SOAK_SCALE` (default 0.002) and round count via
//! `INFINE_SOAK_ROUNDS` (default 20, the issue's floor).

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_durability::failpoint::{
    DIR_FSYNC, ROUND_COMMIT, SNAPSHOT_WRITE, WAL_APPEND, WAL_APPEND_TORN,
};
use infine_durability::{FailPoints, SnapshotPolicy};
use infine_incremental::{
    DeletePolicy, DurabilityOptions, InsertPolicy, MaintenanceEngine, MaintenanceError,
    MaintenanceService, ShardedEngine, VacuumPolicy, ViewMode,
};
use infine_relation::{DeltaBatch, DeltaRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// (site, nth hit that fires). The hit cadence differs per site — WAL
/// and commit sites hit once per round, the snapshot site once per cut
/// (including the baseline cut on the spawning thread, which must
/// survive) — so each lands mid-stream. The dir-fsync site hits twice
/// at spawn (baseline publish, then segment creation — both must
/// survive), so its third hit is the first policy cut's publish: the
/// crash lands after the snapshot rename but before the directory
/// entry is durable.
const CRASH_SITES: [(&str, u64); 5] = [
    (WAL_APPEND, 10),
    (WAL_APPEND_TORN, 10),
    (SNAPSHOT_WRITE, 2),
    (ROUND_COMMIT, 10),
    (DIR_FSYNC, 3),
];

fn soak_rounds() -> usize {
    std::env::var("INFINE_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn soak_scale() -> Scale {
    Scale::of(
        std::env::var("INFINE_SOAK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.002),
    )
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "infine-recsoak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One random round, never empty (the soak's ingest→report lockstep
/// needs every ingest to produce a round).
fn random_round(
    rng: &mut StdRng,
    oracle: &MaintenanceEngine,
    tables: &[String],
) -> Vec<DeltaRelation> {
    let mut round = Vec::new();
    for t in tables {
        match rng.gen_range(0..10u32) {
            0 => {}
            1 => round.push(DeltaRelation::new(t.clone(), DeltaBatch::new())),
            _ => {
                let rel = oracle.database().expect(t);
                let max = (rel.nrows() / 20).max(3);
                let deletes = rng.gen_range(0..=max);
                let inserts = rng.gen_range(0..=max);
                round.push(DeltaRelation::new(
                    t.clone(),
                    random_delta(rng, rel, deletes, inserts),
                ));
            }
        }
    }
    if round.is_empty() {
        round.push(DeltaRelation::new(tables[0].clone(), DeltaBatch::new()));
    }
    round
}

fn engine(
    case_id: &str,
    db: &infine_relation::Database,
    spec: &infine_algebra::ViewSpec,
    shards: usize,
) -> ShardedEngine {
    ShardedEngine::with_options(
        InFine::default(),
        db.clone(),
        spec.clone(),
        shards,
        InsertPolicy::default(),
        DeletePolicy::Tombstone,
        ViewMode::default(),
    )
    .unwrap_or_else(|e| panic!("{case_id}: {shards}-shard bootstrap failed: {e}"))
}

/// Feed the whole stream through a durable service, crash-free, and
/// return the final engine (explicit vacuum + flush first, so tombstone
/// accounting is canonical for the comparison).
fn reference_run(
    case_id: &str,
    eng: ShardedEngine,
    options: DurabilityOptions,
    rounds: &[Vec<DeltaRelation>],
) -> ShardedEngine {
    let service = MaintenanceService::spawn_durable(eng, VacuumPolicy::at_fraction(0.5), options)
        .unwrap_or_else(|e| panic!("{case_id}: durable spawn failed: {e}"));
    for (i, round) in rounds.iter().enumerate() {
        service.ingest(round.clone()).unwrap();
        service
            .recv_report()
            .unwrap_or_else(|| panic!("{case_id}: reference round {i} lost"))
            .unwrap_or_else(|e| panic!("{case_id}: reference round {i} failed: {e}"));
    }
    service.vacuum().unwrap();
    service.recv_report().unwrap().unwrap();
    service.shutdown().unwrap()
}

/// Feed the same stream with one failpoint armed; on worker death,
/// respawn from disk and re-feed exactly the rounds recovery reports as
/// lost. Panics if the stream cannot complete.
fn crash_run(
    case_id: &str,
    site: &str,
    eng: ShardedEngine,
    options: DurabilityOptions,
    rounds: &[Vec<DeltaRelation>],
) -> (ShardedEngine, usize) {
    let mut service =
        MaintenanceService::spawn_durable(eng, VacuumPolicy::at_fraction(0.5), options)
            .unwrap_or_else(|e| panic!("{case_id}/{site}: durable spawn failed: {e}"));
    let mut recoveries = 0usize;
    let mut i = 0usize;
    while i < rounds.len() {
        let died = match service.ingest(rounds[i].clone()) {
            Err(MaintenanceError::WorkerDied) => true,
            Err(e) => panic!("{case_id}/{site}: ingest {i} failed: {e}"),
            Ok(()) => match service.recv_report() {
                Some(Ok(_)) => {
                    i += 1;
                    false
                }
                Some(Err(MaintenanceError::WorkerDied)) | None => true,
                Some(Err(e)) => panic!("{case_id}/{site}: round {i} failed: {e}"),
            },
        };
        if died {
            // Drain the death notice if it has not surfaced yet, then
            // rebuild from snapshot + commitlog and resume the stream
            // exactly where durability says it is.
            while let Some(r) = service.try_recv_report() {
                assert!(r.is_err(), "{case_id}/{site}: report after death");
            }
            let info = service
                .respawn()
                .unwrap_or_else(|e| panic!("{case_id}/{site}: respawn failed: {e}"));
            assert!(
                !info.clean_shutdown,
                "{case_id}/{site}: a crash cannot look like a clean shutdown"
            );
            assert!(
                info.durable_rounds as usize <= rounds.len(),
                "{case_id}/{site}: recovery invented rounds"
            );
            i = info.durable_rounds as usize;
            recoveries += 1;
            assert!(
                recoveries <= CRASH_SITES.len(),
                "{case_id}/{site}: worker keeps dying"
            );
        }
    }
    service.vacuum().unwrap();
    service.recv_report().unwrap().unwrap();
    (service.shutdown().unwrap(), recoveries)
}

/// Recovered-vs-reference equality on everything at rest: provenance
/// triples, merged cover, tombstone accounting, row payloads.
fn assert_static_match(tag: &str, a: &ShardedEngine, b: &ShardedEngine) {
    assert_eq!(
        a.report().triples,
        b.report().triples,
        "{tag}: triples diverged"
    );
    assert!(same_fds(&a.fd_set(), &b.fd_set()), "{tag}: covers diverged");
    let (sa, sb) = (a.tombstone_stats(), b.tombstone_stats());
    assert_eq!(sa.physical_rows, sb.physical_rows, "{tag}: physical rows");
    assert_eq!(sa.live_rows, sb.live_rows, "{tag}: live rows");
    assert_eq!(sa.dict_entries, sb.dict_entries, "{tag}: dict entries");
    for name in a.database().names() {
        let (rel, other) = (a.database().expect(name), b.database().expect(name));
        assert_eq!(rel.nrows(), other.nrows(), "{tag}: {name} rows");
        for r in 0..rel.nrows() {
            assert_eq!(rel.row(r), other.row(r), "{tag}: {name} row {r}");
        }
    }
}

/// Sortable digest of one round report: triples plus the per-FD
/// classification (an engine that merely *looks* equal diverges here).
type ReportDigest = (
    Vec<infine_core::ProvenanceTriple>,
    Vec<(
        infine_discovery::Fd,
        infine_core::FdKind,
        String,
        infine_incremental::FdStatus,
    )>,
    Vec<infine_discovery::Fd>,
);

fn digest(r: &infine_incremental::MaintenanceReport) -> ReportDigest {
    let mut held: Vec<_> = r
        .held
        .iter()
        .map(|(t, s)| (t.fd, t.kind, t.subquery.clone(), *s))
        .collect();
    held.sort();
    let mut fresh = r.fresh.clone();
    fresh.sort();
    (r.triples.clone(), held, fresh)
}

fn soak(case_id: &str, seed: u64) {
    let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
    let db = case.dataset.generate(soak_scale());
    let n_rounds = soak_rounds();
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();

    // Pre-generate one identical stream for every run: an oracle engine
    // tracks the logical row-id space the generator addresses.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
        .unwrap_or_else(|e| panic!("{case_id}: oracle bootstrap failed: {e}"));
    let mut rounds: Vec<Vec<DeltaRelation>> = Vec::with_capacity(n_rounds);
    for i in 0..n_rounds {
        let round = random_round(&mut rng, &oracle, &tables);
        oracle
            .apply(&round)
            .unwrap_or_else(|e| panic!("{case_id}: oracle round {i} failed: {e}"));
        rounds.push(round);
    }
    let probe = random_round(&mut rng, &oracle, &tables);

    let policy = SnapshotPolicy::every_rounds(5);
    for shards in SHARD_COUNTS {
        let ref_dir = tmpdir(&format!("{case_id}-{shards}-ref"));
        let mut reference = reference_run(
            case_id,
            engine(case_id, &db, &case.spec, shards),
            DurabilityOptions::new(&ref_dir).snapshot_policy(policy),
            &rounds,
        );
        let mut survivors: Vec<(String, ShardedEngine)> = Vec::new();
        for (site, nth) in CRASH_SITES {
            let tag = format!("{case_id}/{shards}sh/{site}");
            let dir = tmpdir(&format!("{case_id}-{shards}-{site}"));
            let mut fp = FailPoints::none();
            fp.arm(site, nth);
            let (recovered, recoveries) = crash_run(
                case_id,
                site,
                engine(case_id, &db, &case.spec, shards),
                DurabilityOptions::new(&dir)
                    .snapshot_policy(policy)
                    .failpoints(fp),
                &rounds,
            );
            assert_eq!(recoveries, 1, "{tag}: expected exactly one injected crash");
            assert_static_match(&tag, &reference, &recovered);
            survivors.push((tag, recovered));
            std::fs::remove_dir_all(&dir).unwrap();
        }
        // One shared probe round, applied to reference and every
        // survivor alike, pins live classification behavior too.
        let want = digest(
            &reference
                .apply(&probe)
                .unwrap_or_else(|e| panic!("{case_id}/{shards}sh: reference probe failed: {e}")),
        );
        for (tag, mut recovered) in survivors {
            let got = digest(
                &recovered
                    .apply(&probe)
                    .unwrap_or_else(|e| panic!("{tag}: probe failed: {e}")),
            );
            assert_eq!(got, want, "{tag}: probe round diverged");
        }
        std::fs::remove_dir_all(&ref_dir).unwrap();
    }
}

#[test]
fn tpch_recovery_soak() {
    soak("tpch_q2", 0x7AC0_0001);
}

#[test]
fn mimic_recovery_soak() {
    soak("mimic_q_patients_admissions", 0x7AC0_0002);
}

#[test]
fn ptc_recovery_soak() {
    soak("ptc_connected_bond", 0x7AC0_0003);
}

#[test]
fn pte_recovery_soak() {
    soak("pte_atm_drug", 0x7AC0_0004);
}
