//! Shard-routing edge cases (satellite of the sharded-maintenance PR):
//! all rows landing in one shard, a shard receiving only deletes, and a
//! round where a shard's delta is empty must all produce reports
//! identical to the unsharded engine's.

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_incremental::{
    FdStatus, InsertPolicy, MaintenanceEngine, MaintenanceReport, ShardedEngine,
};
use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "p",
        &["pid", "grp", "flag"],
        &[
            &[Value::Int(1), Value::str("a"), Value::Int(0)],
            &[Value::Int(2), Value::str("a"), Value::Int(0)],
            &[Value::Int(3), Value::str("b"), Value::Int(1)],
            &[Value::Int(4), Value::str("b"), Value::Int(1)],
            &[Value::Int(5), Value::str("c"), Value::Int(0)],
            &[Value::Int(6), Value::str("c"), Value::Int(1)],
        ],
    ));
    db.insert(relation_from_rows(
        "q",
        &["pid", "site"],
        &[
            &[Value::Int(1), Value::str("x")],
            &[Value::Int(2), Value::str("x")],
            &[Value::Int(3), Value::str("y")],
            &[Value::Int(4), Value::str("y")],
            &[Value::Int(5), Value::str("z")],
            &[Value::Int(6), Value::str("z")],
        ],
    ));
    db
}

fn view() -> infine_algebra::ViewSpec {
    infine_algebra::ViewSpec::base("p").inner_join(infine_algebra::ViewSpec::base("q"), &["pid"])
}

fn assert_round_matches(a: &MaintenanceReport, b: &MaintenanceReport, what: &str) {
    assert_eq!(a.triples, b.triples, "{what}: triples diverged");
    assert!(same_fds(&a.cover, &b.cover), "{what}: covers diverged");
    let classify = |r: &MaintenanceReport| {
        let mut held: Vec<_> = r.held.iter().map(|(t, s)| (t.fd, *s)).collect();
        held.sort();
        let mut fresh = r.fresh.clone();
        fresh.sort();
        (held, fresh)
    };
    assert_eq!(classify(a), classify(b), "{what}: classification diverged");
}

/// Every insert routed to shard 0 *and* every delete aimed at shard 0's
/// key range: the whole round lands in one shard while the other shard
/// idles — the merged answer must not notice.
#[test]
fn all_rows_landing_in_one_shard_matches_unsharded() {
    let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
    let mut sharded =
        ShardedEngine::with_policy(InFine::default(), db(), view(), 2, InsertPolicy::Fixed(0))
            .unwrap();
    // shard 0 owns rids 0..3 of each 6-row table at bootstrap; every
    // insert is routed to shard 0, and later rounds delete the previous
    // round's insert (also shard 0), so shard 1 never sees any work.
    for round in 0..3i64 {
        let mut bp = DeltaBatch::new();
        if round > 0 {
            let last = unsharded.database().expect("p").nrows() as u32 - 1;
            bp.delete(last);
        }
        bp.insert(vec![
            Value::Int(10 + round),
            Value::str("a"),
            Value::Int(round),
        ]);
        let deltas = vec![DeltaRelation::new("p", bp)];
        let a = unsharded.apply(&deltas).unwrap();
        let b = sharded.apply(&deltas).unwrap();
        assert_round_matches(&b, &a, "one-shard round");
        // the round really was confined to shard 0: shard 1's fragment
        // kept its bootstrap size
        assert_eq!(sharded.router().fragment_rows("p")[1], 3);
    }
}

/// A round whose only batch deletes rows owned by one shard: that shard
/// sees a delete-only sub-batch, every other shard sees nothing.
#[test]
fn shard_receiving_only_deletes_matches_unsharded() {
    let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
    let mut sharded = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
    // rids 3..6 belong to shard 1
    let mut bq = DeltaBatch::new();
    bq.delete(3).delete(5);
    let deltas = vec![DeltaRelation::new("q", bq)];
    let a = unsharded.apply(&deltas).unwrap();
    let b = sharded.apply(&deltas).unwrap();
    assert_round_matches(&b, &a, "delete-only shard");
    assert_eq!(sharded.router().fragment_rows("q"), &[3, 1]);
    assert_eq!(sharded.router().fragment_rows("p"), &[3, 3]);
}

/// A round where most shards' deltas are empty (one touched row out of
/// four fragments) plus an explicitly empty batch for the other table.
#[test]
fn empty_shard_deltas_match_unsharded() {
    let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
    let mut sharded = ShardedEngine::new(InFine::default(), db(), view(), 4).unwrap();
    let mut bp = DeltaBatch::new();
    bp.delete(0); // only shard 0's fragment changes
    let deltas = vec![
        DeltaRelation::new("p", bp),
        DeltaRelation::new("q", DeltaBatch::new()), // empty batch
    ];
    let a = unsharded.apply(&deltas).unwrap();
    let b = sharded.apply(&deltas).unwrap();
    assert_round_matches(&b, &a, "empty shard deltas");
    // an entirely empty round is fine too, and leaves everything untouched
    let a = unsharded.apply(&[]).unwrap();
    let b = sharded.apply(&[]).unwrap();
    assert_round_matches(&b, &a, "empty round");
    assert_eq!(b.count_status(FdStatus::Untouched), b.cover.len());
}

/// The same three edge shapes on a real datagen view, driven through the
/// skew policy so every insert keeps landing in shard 0.
#[test]
fn skewed_routing_on_datagen_view_matches_unsharded() {
    let case = find("tpch_q2").unwrap();
    let db = case.dataset.generate(Scale::of(0.002));
    let mut rng = StdRng::seed_from_u64(0xED6E);
    let mut unsharded =
        MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone()).unwrap();
    let mut sharded = ShardedEngine::with_policy(
        InFine::default(),
        db,
        case.spec.clone(),
        2,
        InsertPolicy::Fixed(0),
    )
    .unwrap();
    for round in 0..3 {
        let rel = unsharded.database().expect("supplier");
        let batch = random_delta(&mut rng, rel, 2, 4);
        let deltas = vec![DeltaRelation::new("supplier", batch)];
        let a = unsharded.apply(&deltas).unwrap();
        let b = sharded.apply(&deltas).unwrap();
        assert_round_matches(&b, &a, &format!("skewed datagen round {round}"));
    }
}
