//! Chaos soak (the overload-resilience tentpole's acceptance test):
//! drive seeded churn through a durable [`MaintenanceService`] while a
//! seeded adversary arms the fault-injection layer between rounds —
//! injected crashes at every site, transient I/O errors the retry
//! policy must absorb, fatal I/O errors that must drop exactly one
//! round loudly, and slow-disk delays — and pin the surviving state
//! **equal to an unfaulted reference run of the same stream**:
//! provenance triples, merged cover, tombstone accounting, row
//! payloads, and the classification digest of one extra probe round,
//! on one representative view of each of the four datagen databases at
//! 1, 2, and 4 shards. Every ingested round is accounted for: applied
//! (Ok report), dropped (Err report, re-offered), or lost to a crash
//! (re-fed from the recovery resume point) — nothing silent.
//!
//! Two companion soaks cover the overload and supervision layers:
//! a burst soak that floods a `CoalesceInPlace` service with the whole
//! stream at once under transient faults and delays (nothing shed,
//! nothing lost, backlog folded per table), and a supervised soak where
//! the worker is crashed repeatedly and the service self-heals through
//! auto-respawn, driving the circuit breaker through open → half-open →
//! closed while the producer resumes from [`RecoveryInfo`].
//!
//! Scale via `INFINE_SOAK_SCALE` (default 0.002) and round count via
//! `INFINE_SOAK_ROUNDS` (default 20).

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_durability::failpoint::{ROUND_COMMIT, SNAPSHOT_WRITE, WAL_APPEND, WAL_APPEND_TORN};
use infine_durability::{FailPoints, SnapshotPolicy};
use infine_incremental::{
    DeletePolicy, DurabilityOptions, IngestPolicy, InsertPolicy, MaintenanceEngine,
    MaintenanceError, MaintenanceService, ServicePolicies, ShardedEngine, SupervisorPolicy,
    VacuumPolicy, ViewMode,
};
use infine_relation::{DeltaBatch, DeltaRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn soak_rounds() -> usize {
    std::env::var("INFINE_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn soak_scale() -> Scale {
    Scale::of(
        std::env::var("INFINE_SOAK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.002),
    )
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "infine-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One random round, never empty (the lockstep soaks need every ingest
/// to produce a round).
fn random_round(
    rng: &mut StdRng,
    oracle: &MaintenanceEngine,
    tables: &[String],
    with_deletes: bool,
) -> Vec<DeltaRelation> {
    let mut round = Vec::new();
    for t in tables {
        match rng.gen_range(0..10u32) {
            0 => {}
            1 => round.push(DeltaRelation::new(t.clone(), DeltaBatch::new())),
            _ => {
                let rel = oracle.database().expect(t);
                let max = (rel.nrows() / 20).max(3);
                let deletes = if with_deletes {
                    rng.gen_range(0..=max)
                } else {
                    0
                };
                let inserts = rng.gen_range(0..=max);
                round.push(DeltaRelation::new(
                    t.clone(),
                    random_delta(rng, rel, deletes, inserts),
                ));
            }
        }
    }
    if round.is_empty() {
        round.push(DeltaRelation::new(tables[0].clone(), DeltaBatch::new()));
    }
    round
}

fn engine(
    case_id: &str,
    db: &infine_relation::Database,
    spec: &infine_algebra::ViewSpec,
    shards: usize,
) -> ShardedEngine {
    ShardedEngine::with_options(
        InFine::default(),
        db.clone(),
        spec.clone(),
        shards,
        InsertPolicy::default(),
        DeletePolicy::Tombstone,
        ViewMode::default(),
    )
    .unwrap_or_else(|e| panic!("{case_id}: {shards}-shard bootstrap failed: {e}"))
}

/// Feed the whole stream through a fault-free durable service in
/// lockstep and return the final engine, canonicalized by one explicit
/// vacuum.
fn reference_run(
    tag: &str,
    eng: ShardedEngine,
    options: DurabilityOptions,
    vacuum: VacuumPolicy,
    rounds: &[Vec<DeltaRelation>],
) -> ShardedEngine {
    let service = MaintenanceService::spawn_durable(eng, vacuum, options)
        .unwrap_or_else(|e| panic!("{tag}: reference spawn failed: {e}"));
    for (i, round) in rounds.iter().enumerate() {
        service.ingest(round.clone()).unwrap();
        service
            .recv_report()
            .unwrap_or_else(|| panic!("{tag}: reference round {i} lost"))
            .unwrap_or_else(|e| panic!("{tag}: reference round {i} failed: {e}"));
    }
    service.vacuum().unwrap();
    service.recv_report().unwrap().unwrap();
    service.shutdown().unwrap()
}

/// Everything-at-rest equality: provenance triples, merged cover,
/// tombstone accounting, row payloads. `strict_dict` compares the
/// dictionary size too — only valid when both runs grouped the stream
/// into the same rounds (coalescing an insert away before its delete
/// means the value never enters the dictionary at all).
fn assert_match(tag: &str, a: &ShardedEngine, b: &ShardedEngine, strict_dict: bool) {
    assert_eq!(
        a.report().triples,
        b.report().triples,
        "{tag}: triples diverged"
    );
    assert!(same_fds(&a.fd_set(), &b.fd_set()), "{tag}: covers diverged");
    let (sa, sb) = (a.tombstone_stats(), b.tombstone_stats());
    assert_eq!(sa.physical_rows, sb.physical_rows, "{tag}: physical rows");
    assert_eq!(sa.live_rows, sb.live_rows, "{tag}: live rows");
    if strict_dict {
        assert_eq!(sa.dict_entries, sb.dict_entries, "{tag}: dict entries");
    }
    for name in a.database().names() {
        let (rel, other) = (a.database().expect(name), b.database().expect(name));
        assert_eq!(rel.nrows(), other.nrows(), "{tag}: {name} rows");
        for r in 0..rel.nrows() {
            assert_eq!(rel.row(r), other.row(r), "{tag}: {name} row {r}");
        }
    }
}

/// Sortable digest of one round report: triples plus per-FD
/// classification (an engine that merely *looks* equal diverges here).
type ReportDigest = (
    Vec<infine_core::ProvenanceTriple>,
    Vec<(
        infine_discovery::Fd,
        infine_core::FdKind,
        String,
        infine_incremental::FdStatus,
    )>,
    Vec<infine_discovery::Fd>,
);

fn digest(r: &infine_incremental::MaintenanceReport) -> ReportDigest {
    let mut held: Vec<_> = r
        .held
        .iter()
        .map(|(t, s)| (t.fd, t.kind, t.subquery.clone(), *s))
        .collect();
    held.sort();
    let mut fresh = r.fresh.clone();
    fresh.sort();
    (r.triples.clone(), held, fresh)
}

/// What the adversary does to the round about to be ingested.
#[derive(Debug, Clone, Copy)]
enum Inject {
    None,
    /// Transient I/O errors the retry policy must absorb silently.
    Transient {
        site: &'static str,
        times: u64,
    },
    /// A fatal I/O error on the commitlog append: this round must be
    /// dropped with an Err report and succeed when re-offered.
    Fatal,
    /// A slow disk at one site; the round must still succeed.
    Delay {
        site: &'static str,
        ms: u64,
    },
    /// An injected crash; the worker dies and is respawned from disk.
    Crash {
        site: &'static str,
    },
}

/// Seeded injection schedule, at most `max_crashes` crashes, at least
/// one (forced mid-stream if the dice never rolled one).
fn chaos_plan(rng: &mut StdRng, n: usize, max_crashes: usize) -> Vec<Inject> {
    let mut crashes = 0usize;
    let mut plan: Vec<Inject> = (0..n)
        .map(|_| match rng.gen_range(0..100u32) {
            0..=54 => Inject::None,
            55..=69 => Inject::Transient {
                site: if rng.gen_bool(0.5) {
                    WAL_APPEND
                } else {
                    SNAPSHOT_WRITE
                },
                times: rng.gen_range(1..=2),
            },
            70..=79 => Inject::Fatal,
            80..=89 => Inject::Delay {
                site: [WAL_APPEND, SNAPSHOT_WRITE, ROUND_COMMIT][rng.gen_range(0..3)],
                ms: rng.gen_range(1..=10),
            },
            _ => {
                if crashes < max_crashes {
                    crashes += 1;
                    Inject::Crash {
                        site: [WAL_APPEND, WAL_APPEND_TORN, SNAPSHOT_WRITE, ROUND_COMMIT]
                            [rng.gen_range(0..4)],
                    }
                } else {
                    Inject::Delay {
                        site: WAL_APPEND,
                        ms: 2,
                    }
                }
            }
        })
        .collect();
    if crashes == 0 && n > 0 {
        plan[n / 2] = Inject::Crash { site: WAL_APPEND };
    }
    plan
}

/// Feed the stream under the injection plan, reacting to whatever
/// surfaces: Ok advances, a fatal drop re-offers the same round, a
/// crash respawns from disk and resumes at the durable head. Returns
/// the final engine plus the ledger (oks, drops, recoveries).
fn chaos_run(
    tag: &str,
    eng: ShardedEngine,
    options: DurabilityOptions,
    plan: &[Inject],
    rounds: &[Vec<DeltaRelation>],
) -> (ShardedEngine, usize, usize, usize) {
    // The FailPoints Arc must exist BEFORE the service clones the
    // options, so live re-arming from this thread reaches the worker —
    // and any respawned worker, which clones the same options. The
    // zero-delay seed entry materializes the Arc harmlessly.
    let mut fp = FailPoints::none();
    fp.arm_delay(ROUND_COMMIT, 1, 1, 0);
    let options = options.failpoints(fp.clone());
    let mut service =
        MaintenanceService::spawn_durable(eng, VacuumPolicy::at_fraction(0.5), options)
            .unwrap_or_else(|e| panic!("{tag}: chaos spawn failed: {e}"));

    let (mut oks, mut drops, mut recoveries) = (0usize, 0usize, 0usize);
    let mut attempts = 0usize;
    let mut i = 0usize;
    // Arm each round's injection exactly once, on its first attempt —
    // re-offers and re-feeds run uninjected (the schedule is per round
    // of the stream, not per attempt).
    let mut armed_upto = 0usize;
    let mut iterations = 0usize;
    while i < rounds.len() {
        iterations += 1;
        assert!(
            iterations < rounds.len() * 10 + 100,
            "{tag}: chaos loop is not converging (i={i}, oks={oks}, drops={drops}, recoveries={recoveries})"
        );
        if i >= armed_upto {
            armed_upto = i + 1;
            match plan[i] {
                Inject::None => {}
                Inject::Transient { site, times } => fp.arm_err(site, 1, times, true),
                Inject::Fatal => fp.arm_err(WAL_APPEND, 1, 1, false),
                Inject::Delay { site, ms } => fp.arm_delay(site, 1, 1, ms),
                Inject::Crash { site } => fp.arm(site, 1),
            }
        }
        let died = match service.ingest(rounds[i].clone()) {
            Err(MaintenanceError::WorkerDied) => true,
            Err(e) => panic!("{tag}: ingest {i} failed: {e}"),
            Ok(()) => {
                attempts += 1;
                match service.recv_report_timeout(Duration::from_secs(60)) {
                    Some(Ok(_)) => {
                        oks += 1;
                        i += 1;
                        false
                    }
                    Some(Err(MaintenanceError::Durability(_))) => {
                        // The injected fatal error dropped this round
                        // loudly; the producer's stream position is
                        // unchanged, so re-offer the same round.
                        drops += 1;
                        false
                    }
                    Some(Err(MaintenanceError::WorkerDied)) | None => true,
                    Some(Err(e)) => panic!("{tag}: round {i} failed: {e}"),
                }
            }
        };
        if died {
            while let Some(r) = service.try_recv_report() {
                assert!(r.is_err(), "{tag}: Ok report after death");
            }
            // The respawn path publishes a fresh snapshot on THIS
            // thread; neutralize any still-armed snapshot-site action so
            // an injection meant for the worker cannot kill the test.
            fp.arm_delay(SNAPSHOT_WRITE, 1, 1, 0);
            let info = service
                .respawn()
                .unwrap_or_else(|e| panic!("{tag}: respawn failed: {e}"));
            assert!(
                !info.clean_shutdown,
                "{tag}: a crash cannot look like a clean shutdown"
            );
            assert!(
                info.durable_rounds as usize <= rounds.len(),
                "{tag}: recovery invented rounds"
            );
            i = info.durable_rounds as usize;
            recoveries += 1;
        }
    }
    // The ledger must balance: every round that was actually queued
    // ended as exactly one of applied, dropped, or lost to a crash.
    let lost = attempts - oks - drops;
    assert!(
        lost <= recoveries,
        "{tag}: {lost} rounds vanished without a matching recovery"
    );
    // The injection schedule is scoped to the stream: a leftover arm
    // whose site was never hit again (a snapshot-write crash when no
    // cut came due, say) must not fire during the canonicalizing
    // vacuum or the clean-shutdown round. Overwrite every site with a
    // harmless zero delay before the tail runs.
    for site in [WAL_APPEND, WAL_APPEND_TORN, SNAPSHOT_WRITE, ROUND_COMMIT] {
        fp.arm_delay(site, 1, 1, 0);
    }
    // Canonicalizing vacuum, healing through a worker that a leftover
    // injection already killed at the very end of the stream.
    let mut tail_tries = 0usize;
    loop {
        tail_tries += 1;
        assert!(tail_tries <= 8, "{tag}: final vacuum never lands");
        let sent = service.vacuum();
        if sent.is_ok() {
            match service.recv_report_timeout(Duration::from_secs(60)) {
                Some(Ok(_)) => break,
                Some(Err(MaintenanceError::Durability(_))) => continue,
                Some(Err(MaintenanceError::WorkerDied)) | None => {}
                Some(Err(e)) => panic!("{tag}: final vacuum failed: {e}"),
            }
        }
        while let Some(r) = service.try_recv_report() {
            assert!(r.is_err(), "{tag}: Ok report after death");
        }
        fp.arm_delay(SNAPSHOT_WRITE, 1, 1, 0);
        service
            .respawn()
            .unwrap_or_else(|e| panic!("{tag}: tail respawn failed: {e}"));
        recoveries += 1;
    }
    (service.shutdown().unwrap(), drops, recoveries, attempts)
}

fn chaos_soak(case_id: &str, seed: u64) {
    let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
    let db = case.dataset.generate(soak_scale());
    let n_rounds = soak_rounds();
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
        .unwrap_or_else(|e| panic!("{case_id}: oracle bootstrap failed: {e}"));
    let mut rounds: Vec<Vec<DeltaRelation>> = Vec::with_capacity(n_rounds);
    for i in 0..n_rounds {
        let round = random_round(&mut rng, &oracle, &tables, true);
        oracle
            .apply(&round)
            .unwrap_or_else(|e| panic!("{case_id}: oracle round {i} failed: {e}"));
        rounds.push(round);
    }
    let probe = random_round(&mut rng, &oracle, &tables, true);

    let policy = SnapshotPolicy::every_rounds(5);
    for shards in SHARD_COUNTS {
        let tag = format!("{case_id}/{shards}sh");
        let ref_dir = tmpdir(&format!("{case_id}-{shards}-ref"));
        let mut reference = reference_run(
            &tag,
            engine(case_id, &db, &case.spec, shards),
            DurabilityOptions::new(&ref_dir).snapshot_policy(policy),
            VacuumPolicy::at_fraction(0.5),
            &rounds,
        );

        let mut plan_rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5000 ^ shards as u64);
        let plan = chaos_plan(&mut plan_rng, n_rounds, 3);
        let dir = tmpdir(&format!("{case_id}-{shards}-chaos"));
        let (mut survivor, drops, recoveries, attempts) = chaos_run(
            &tag,
            engine(case_id, &db, &case.spec, shards),
            DurabilityOptions::new(&dir).snapshot_policy(policy),
            &plan,
            &rounds,
        );
        assert!(
            recoveries >= 1,
            "{tag}: the plan guarantees at least one crash"
        );
        assert!(
            attempts >= n_rounds,
            "{tag}: fewer attempts ({attempts}) than rounds"
        );
        let fatals = plan.iter().filter(|j| matches!(j, Inject::Fatal)).count();
        assert!(
            drops <= fatals,
            "{tag}: more dropped rounds ({drops}) than injected fatal faults ({fatals})"
        );
        assert_match(&tag, &reference, &survivor, true);

        // One shared probe round pins live classification behavior.
        let want = digest(
            &reference
                .apply(&probe)
                .unwrap_or_else(|e| panic!("{tag}: reference probe failed: {e}")),
        );
        let got = digest(
            &survivor
                .apply(&probe)
                .unwrap_or_else(|e| panic!("{tag}: survivor probe failed: {e}")),
        );
        assert_eq!(got, want, "{tag}: probe round diverged");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&ref_dir).unwrap();
    }
}

#[test]
fn tpch_chaos_soak() {
    chaos_soak("tpch_q2", 0xC4A0_0001);
}

#[test]
fn mimic_chaos_soak() {
    chaos_soak("mimic_q_patients_admissions", 0xC4A0_0002);
}

#[test]
fn ptc_chaos_soak() {
    chaos_soak("ptc_connected_bond", 0xC4A0_0003);
}

#[test]
fn pte_chaos_soak() {
    chaos_soak("pte_atm_drug", 0xC4A0_0004);
}

/// Burst soak: the whole stream is offered at once to a
/// `CoalesceInPlace` service while transient faults and slow-disk
/// delays fire — nothing may be shed, nothing lost, and the folded
/// backlog must converge to the lockstep reference state.
#[test]
fn overload_burst_soak_folds_backlog_without_loss() {
    let registry = infine_obs::Registry::scoped();
    let _scope = registry.enter();
    let case = find("tpch_q2").unwrap();
    let db = case.dataset.generate(soak_scale());
    let n_rounds = soak_rounds();
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC4A0_B057);
    let mut oracle =
        MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone()).unwrap();
    let mut rounds: Vec<Vec<DeltaRelation>> = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let round = random_round(&mut rng, &oracle, &tables, true);
        oracle.apply(&round).unwrap();
        rounds.push(round);
    }
    let total_batches: usize = rounds.iter().map(Vec::len).sum();

    let ref_dir = tmpdir("burst-ref");
    let reference = reference_run(
        "burst",
        engine("tpch_q2", &db, &case.spec, 2),
        DurabilityOptions::new(&ref_dir).snapshot_policy(SnapshotPolicy::every_rounds(5)),
        VacuumPolicy::default(),
        &rounds,
    );

    let dir = tmpdir("burst-chaos");
    let mut fp = FailPoints::none();
    fp.arm_delay(ROUND_COMMIT, 1, 1, 0);
    let policies = ServicePolicies::default().ingest(IngestPolicy::coalesce_in_place());
    let service = MaintenanceService::spawn_durable_with_policies(
        engine("tpch_q2", &db, &case.spec, 2),
        DurabilityOptions::new(&dir)
            .snapshot_policy(SnapshotPolicy::every_rounds(5))
            .failpoints(fp.clone()),
        policies,
    )
    .unwrap();
    // Flood: every round at once. The coalescing worker folds the
    // backlog into a handful of big rounds, so the transient faults are
    // armed ONCE, up front, on the first commitlog append — three
    // consecutive errors, inside the default retry budget of four
    // attempts — plus slow snapshot writes sprinkled mid-burst. (Arming
    // per iteration at one site would just overwrite itself faster than
    // the worker can hit it.)
    fp.arm_err(WAL_APPEND, 1, 3, true);
    for (i, round) in rounds.iter().enumerate() {
        if i % 7 == 3 {
            fp.arm_delay(SNAPSHOT_WRITE, 1, 1, 2);
        }
        service.ingest(round.clone()).unwrap();
    }
    // Everything admitted must drain.
    let t0 = Instant::now();
    loop {
        let stats = service.stats();
        if stats.queue_depth == 0 && stats.in_flight == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "burst backlog never drained: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Every report must be an Ok — transient faults are absorbed, and
    // nothing was ever shed or rejected.
    while let Some(r) = service.try_recv_report() {
        r.unwrap_or_else(|e| panic!("burst round failed: {e}"));
    }
    service.vacuum().unwrap();
    service.recv_report().unwrap().unwrap();
    let survivor = service.shutdown().unwrap();
    assert_match("burst", &reference, &survivor, false);

    let snap = registry.snapshot();
    assert_eq!(snap.get("infine_service_shed_total"), Some(0.0));
    assert_eq!(snap.get("infine_service_rejected_total"), Some(0.0));
    // Both runs accept every batch; the burst run additionally folds.
    assert_eq!(
        snap.get("infine_service_batches_total"),
        Some(2.0 * total_batches as f64),
        "every offered batch is accepted exactly once per run"
    );
    assert!(
        snap.get("infine_retry_attempts_total").unwrap_or(0.0) > 0.0,
        "the armed transient faults must have been absorbed by retry"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&ref_dir).unwrap();
}

/// Supervised soak: crash the worker repeatedly under an insert-only
/// stream and let the service heal itself — auto-respawn with backoff,
/// breaker open → half-open probe → closed — while the producer resumes
/// from the durable head after every death.
#[test]
fn supervised_soak_self_heals_through_the_breaker() {
    let registry = infine_obs::Registry::scoped();
    let _scope = registry.enter();
    let case = find("tpch_q2").unwrap();
    let db = case.dataset.generate(soak_scale());
    let n_rounds = soak_rounds();
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC4A0_5EEF);
    let mut oracle =
        MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone()).unwrap();
    // Insert-only: automatic respawn is only safe for streams the
    // producer can re-derive from the resume point, and an insert-only
    // feed re-offers verbatim.
    let mut rounds: Vec<Vec<DeltaRelation>> = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let round = random_round(&mut rng, &oracle, &tables, false);
        oracle.apply(&round).unwrap();
        rounds.push(round);
    }

    let ref_dir = tmpdir("sup-ref");
    let reference = reference_run(
        "supervised",
        engine("tpch_q2", &db, &case.spec, 2),
        DurabilityOptions::new(&ref_dir).snapshot_policy(SnapshotPolicy::every_rounds(5)),
        VacuumPolicy::default(),
        &rounds,
    );

    let dir = tmpdir("sup-chaos");
    let mut fp = FailPoints::none();
    fp.arm_delay(ROUND_COMMIT, 1, 1, 0);
    let policies = ServicePolicies::default().supervisor(
        SupervisorPolicy::auto()
            .respawn_backoff(Duration::from_millis(1))
            .breaker(3, Duration::from_secs(30), Duration::from_millis(30)),
    );
    let service = MaintenanceService::spawn_durable_with_policies(
        engine("tpch_q2", &db, &case.spec, 2),
        DurabilityOptions::new(&dir)
            .snapshot_policy(SnapshotPolicy::every_rounds(5))
            .failpoints(fp.clone()),
        policies,
    )
    .unwrap();

    // Crash every third round, cycling the sites that fire on the
    // worker thread (never SNAPSHOT_WRITE: the respawn path publishes
    // on the producer thread and must survive).
    let crash_sites = [WAL_APPEND, ROUND_COMMIT, WAL_APPEND_TORN];
    let mut crashes = 0usize;
    let mut breaker_opens_seen = 0usize;
    let mut i = 0usize;
    let mut armed_upto = 0usize;
    let mut iterations = 0usize;
    // Heal flushes are logged WAL rounds too, so the recovered
    // `durable_rounds` counts stream rounds PLUS every flush that
    // landed — subtract them to translate back to a stream position.
    let mut extra_logged = 0usize;
    while i < rounds.len() {
        iterations += 1;
        assert!(
            iterations < rounds.len() * 20 + 200,
            "supervised loop is not converging (i={i}, crashes={crashes})"
        );
        if i >= armed_upto {
            armed_upto = i + 1;
            if i % 3 == 2 {
                fp.arm(crash_sites[crashes % crash_sites.len()], 1);
                crashes += 1;
            }
        }
        match service.ingest(rounds[i].clone()) {
            Ok(()) => {}
            Err(MaintenanceError::BreakerOpen) => {
                breaker_opens_seen += 1;
                std::thread::sleep(Duration::from_millis(40));
                continue;
            }
            Err(e) => panic!("supervised ingest {i} failed: {e}"),
        }
        match service.recv_report_timeout(Duration::from_secs(60)) {
            Some(Ok(_)) => {
                if let Some(info) = service.take_recovery_info() {
                    // The only transparent respawn reachable in this
                    // lockstep is gap-free (the crashed round was never
                    // made durable, so the recovered head IS the stream
                    // position the round just ran against).
                    assert_eq!(
                        info.durable_rounds as usize - extra_logged,
                        i,
                        "transparent respawn left a stream gap"
                    );
                }
                i += 1;
            }
            Some(Err(MaintenanceError::WorkerDied)) | None => {
                // Death surfaced on the report channel. Heal through a
                // CONTENT-FREE request — a crashed round may already be
                // durable (death after commit, before the report), so
                // blindly re-ingesting it would apply it twice. The
                // flush triggers the supervised respawn, its RecoveryInfo
                // gives the durable head, and the stream resumes there.
                loop {
                    match service.flush() {
                        Ok(()) => break,
                        Err(MaintenanceError::BreakerOpen) => {
                            breaker_opens_seen += 1;
                            std::thread::sleep(Duration::from_millis(40));
                        }
                        Err(e) => panic!("supervised heal flush failed: {e}"),
                    }
                }
                service
                    .recv_report_timeout(Duration::from_secs(60))
                    .expect("flush round report")
                    .expect("flush round after heal");
                let info = service
                    .take_recovery_info()
                    .expect("the heal flush respawned a dead worker");
                i = info.durable_rounds as usize - extra_logged;
                extra_logged += 1;
            }
            Some(Err(e)) => panic!("supervised round {i} failed: {e}"),
        }
    }
    service.vacuum().unwrap();
    service.recv_report().unwrap().unwrap();
    let survivor = service.shutdown().unwrap();

    assert!(crashes >= 3, "the schedule injects at least three crashes");
    assert!(
        breaker_opens_seen > 0,
        "three deaths inside the window must open the breaker at least once"
    );
    let snap = registry.snapshot();
    assert!(
        snap.get("infine_service_respawns_total").unwrap_or(0.0) >= 1.0,
        "self-healing must have respawned the worker"
    );
    assert_eq!(
        snap.get("infine_service_breaker_state"),
        Some(0.0),
        "a completed stream means the breaker ended closed"
    );
    assert_match("supervised", &reference, &survivor, true);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&ref_dir).unwrap();
}
