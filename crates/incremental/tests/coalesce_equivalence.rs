//! Coalescing property (satellite of the sharded-maintenance PR):
//! applying a coalesced batch ([`DeltaBatch::then`]) is equivalent to
//! applying its constituent batches sequentially — same engine state
//! (cover, triples, row values) and consistent reported FD
//! classifications — including the delete-then-reinsert-same-key case
//! and the cancellation case (a later delete of an earlier insert).

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_incremental::{FdStatus, MaintenanceEngine, ShardedEngine};
use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_rows_equal(a: &Relation, b: &Relation, what: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{what}: row counts differ");
    for r in 0..a.nrows() {
        assert_eq!(a.row(r), b.row(r), "{what}: row {r} differs");
    }
}

/// Apply `batches` to `table` sequentially on one engine and coalesced on
/// another (plus a 2-shard engine), then pin state equality everywhere.
fn assert_coalesce_equivalent(
    db: &Database,
    spec: &infine_algebra::ViewSpec,
    table: &str,
    batches: &[DeltaBatch],
) {
    let mut sequential = MaintenanceEngine::new(InFine::default(), db.clone(), spec.clone())
        .expect("sequential bootstrap");
    // `then`'s old_nrows is always the row count the *coalesced* batch
    // will be applied at — the pre-chain table.
    let base_nrows = db.expect(table).nrows();
    let mut coalesced_batch = DeltaBatch::new();
    let mut first = true;
    for b in batches {
        if first {
            coalesced_batch = b.clone();
            first = false;
        } else {
            coalesced_batch = coalesced_batch.then(b, base_nrows);
        }
        sequential
            .apply_one(&DeltaRelation::new(table, b.clone()))
            .expect("sequential apply");
    }

    let mut coalesced = MaintenanceEngine::new(InFine::default(), db.clone(), spec.clone())
        .expect("coalesced bootstrap");
    let report = coalesced
        .apply_one(&DeltaRelation::new(table, coalesced_batch.clone()))
        .expect("coalesced apply");
    let mut sharded = ShardedEngine::new(InFine::default(), db.clone(), spec.clone(), 2)
        .expect("sharded bootstrap");
    let sharded_report = sharded
        .apply_one(&DeltaRelation::new(table, coalesced_batch))
        .expect("sharded coalesced apply");

    // Engine state: covers and triples identical, row values identical
    // (dictionary codes may legitimately differ when an insert was
    // cancelled, so rows are compared by value).
    assert_eq!(
        sequential.report().triples,
        coalesced.report().triples,
        "coalesced ≠ sequential triples"
    );
    assert!(same_fds(&sequential.fd_set(), &coalesced.fd_set()));
    assert_rows_equal(
        sequential.database().expect(table),
        coalesced.database().expect(table),
        "coalesced vs sequential",
    );

    // The sharded engine agrees with the unsharded one on the coalesced
    // round — classifications included.
    assert_eq!(report.triples, sharded_report.triples);
    let classify = |r: &infine_incremental::MaintenanceReport| {
        let mut held: Vec<_> = r.held.iter().map(|(t, s)| (t.fd, *s)).collect();
        held.sort();
        let mut fresh = r.fresh.clone();
        fresh.sort();
        (held, fresh)
    };
    assert_eq!(classify(&report), classify(&sharded_report));

    // Classification consistency of the coalesced round: invalidated ⇔
    // dropped from the cover, fresh ⇔ not previously held.
    for (t, s) in &report.held {
        assert_eq!(
            *s == FdStatus::Invalidated,
            !report.cover.contains(&t.fd),
            "held FD {:?} misclassified",
            t.fd
        );
    }
    for fd in &report.fresh {
        assert!(report.cover.contains(fd));
        assert!(!report.held.iter().any(|(t, _)| t.fd == *fd));
    }

    // ... and everything equals full re-discovery.
    let full = InFine::default()
        .discover(coalesced.database(), spec)
        .expect("full discover");
    assert_eq!(coalesced.report().triples, full.triples);
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "p",
        &["pid", "grp", "flag"],
        &[
            &[Value::Int(1), Value::str("a"), Value::Int(0)],
            &[Value::Int(2), Value::str("a"), Value::Int(0)],
            &[Value::Int(3), Value::str("b"), Value::Int(1)],
            &[Value::Int(4), Value::str("b"), Value::Int(1)],
        ],
    ));
    db.insert(relation_from_rows(
        "q",
        &["pid", "site"],
        &[
            &[Value::Int(1), Value::str("x")],
            &[Value::Int(2), Value::str("x")],
            &[Value::Int(3), Value::str("y")],
            &[Value::Int(4), Value::str("y")],
        ],
    ));
    db
}

fn view() -> infine_algebra::ViewSpec {
    infine_algebra::ViewSpec::base("p").inner_join(infine_algebra::ViewSpec::base("q"), &["pid"])
}

/// Delete a row, then reinsert the same key/values in the next batch:
/// the coalesced round must behave like the (net no-op-ish) sequence.
#[test]
fn delete_then_reinsert_same_key() {
    let mut b1 = DeltaBatch::new();
    b1.delete(2);
    let mut b2 = DeltaBatch::new();
    b2.insert(vec![Value::Int(3), Value::str("b"), Value::Int(1)]);
    assert_coalesce_equivalent(&db(), &view(), "p", &[b1, b2]);

    // The logical content round-trips, so the final cover equals the
    // bootstrap cover and the coalesced round invalidates nothing.
    let mut engine = MaintenanceEngine::with_defaults(db(), view()).unwrap();
    let before = engine.fd_set();
    let mut b1 = DeltaBatch::new();
    b1.delete(2);
    let mut b2 = DeltaBatch::new();
    b2.insert(vec![Value::Int(3), Value::str("b"), Value::Int(1)]);
    let coalesced = b1.then(&b2, engine.database().expect("p").nrows());
    let report = engine
        .apply_one(&DeltaRelation::new("p", coalesced))
        .unwrap();
    assert!(same_fds(&engine.fd_set(), &before));
    assert_eq!(report.count_status(FdStatus::Invalidated), 0);
    assert!(report.fresh.is_empty());
}

/// The second batch deletes a row the first batch inserted — the
/// coalesced batch cancels the insert entirely.
#[test]
fn cancelled_insert_round_trips() {
    let mut b1 = DeltaBatch::new();
    b1.insert(vec![Value::Int(2), Value::str("zz"), Value::Int(9)]) // breaks grp → flag
        .delete(0);
    let mut b2 = DeltaBatch::new();
    b2.delete(3); // post-b1 rid of the inserted row (4 rows - 1 delete = 3 survivors)
    assert_coalesce_equivalent(&db(), &view(), "p", &[b1, b2]);
}

/// Three-deep chains of random batches on a datagen view: coalescing is
/// associative with application order.
#[test]
fn random_chains_on_datagen_view() {
    let case = find("tpch_q2").unwrap();
    let base = case.dataset.generate(Scale::of(0.002));
    let mut rng = StdRng::seed_from_u64(0xC0A1);
    for chain in 0..3 {
        // Build the chain against a scratch copy of the table so each
        // batch addresses the intermediate state, like a real feed.
        let mut scratch = base.expect("supplier").clone();
        let mut batches = Vec::new();
        for _ in 0..3 {
            let (deletes, inserts) = (rng.gen_range(0..4), rng.gen_range(0..5));
            let b = random_delta(&mut rng, &scratch, deletes, inserts);
            let (next, _) = scratch.apply_delta(&b, "supplier");
            scratch = next;
            batches.push(b);
        }
        eprintln!("# chain {chain}");
        assert_coalesce_equivalent(&base, &case.spec, "supplier", &batches);
    }
}
