//! View-mode equivalence soak (satellite of the materialization-free
//! view PR): ≥20 seeded random churn rounds on one representative view
//! of each of the four datagen databases, pinning after **every** round
//! that [`ViewMode::JoinIndex`] — unsharded and at 1, 2, and 4 shards —
//! produces the same cover, the same surviving provenance triples, and
//! the same per-FD round classification as [`ViewMode::Materialized`],
//! and that both equal full `InFine::discover` re-discovery of the
//! updated database. The virtual lanes must hold **zero** resident
//! materialized view rows throughout.
//!
//! Each case runs twice: once under the compacting delete policy and
//! once under tombstones with a mid-soak vacuum, pinning the stored
//! base tables' tombstone accounting byte-equal across modes and the
//! covers unchanged across the vacuum. A final kill-and-recover pass
//! drives a durable service in JoinIndex mode through a WAL-append
//! crash and pins the recovered engine (and its published cover
//! snapshots) against a never-crashed reference.
//!
//! Scale via `INFINE_SOAK_SCALE` (default 0.002) and round count via
//! `INFINE_SOAK_ROUNDS` (default 20, the satellite's floor).

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::{same_fds, Fd, FdSet};
use infine_durability::failpoint::WAL_APPEND;
use infine_durability::{FailPoints, SnapshotPolicy};
use infine_incremental::{
    DeletePolicy, DurabilityOptions, InsertPolicy, MaintenanceEngine, MaintenanceError,
    MaintenanceMode, MaintenanceReport, MaintenanceService, ShardedEngine, TombstoneStats,
    VacuumPolicy, ViewMode,
};
use infine_relation::{AttrSet, Database, DeltaBatch, DeltaRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn soak_rounds() -> usize {
    std::env::var("INFINE_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn soak_scale() -> Scale {
    Scale::of(
        std::env::var("INFINE_SOAK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.002),
    )
}

/// One random round: per base table, usually a mixed batch sized by a
/// per-round dice roll, sometimes an explicitly empty batch, sometimes
/// no batch at all. Generated against the compacting oracle engine so
/// row ids address the logical (tombstone-free) table.
fn random_round(
    rng: &mut StdRng,
    oracle: &MaintenanceEngine,
    tables: &[String],
) -> Vec<DeltaRelation> {
    let mut round = Vec::new();
    for t in tables {
        match rng.gen_range(0..10u32) {
            0 => {}
            1 => round.push(DeltaRelation::new(t.clone(), DeltaBatch::new())),
            _ => {
                let rel = oracle.database().expect(t);
                let max = (rel.nrows() / 20).max(3);
                let deletes = rng.gen_range(0..=max);
                let inserts = rng.gen_range(0..=max);
                round.push(DeltaRelation::new(
                    t.clone(),
                    random_delta(rng, rel, deletes, inserts),
                ));
            }
        }
    }
    round
}

/// Sortable digest of one round report: surviving triples plus the
/// per-FD classification — the full observable surface of a cover-only
/// round. Two backends that merely *look* equal diverge here.
type ReportDigest = (
    Vec<infine_core::ProvenanceTriple>,
    Vec<(
        infine_discovery::Fd,
        infine_core::FdKind,
        String,
        infine_incremental::FdStatus,
    )>,
    Vec<infine_discovery::Fd>,
);

fn digest(r: &MaintenanceReport) -> ReportDigest {
    let mut held: Vec<_> = r
        .held
        .iter()
        .map(|(t, s)| (t.fd, t.kind, t.subquery.clone(), *s))
        .collect();
    held.sort();
    let mut fresh = r.fresh.clone();
    fresh.sort();
    (r.triples.clone(), held, fresh)
}

/// Tombstone accounting of the *stored base tables* only — the part
/// that must be byte-equal across view backends (backend-held state is
/// view-shaped in one mode and base-shaped in the other, so the engine
/// totals legitimately differ).
fn stored_table_stats(db: &Database) -> TombstoneStats {
    let mut stats = TombstoneStats::default();
    let mut names: Vec<&str> = db.names().collect();
    names.sort();
    for name in names {
        stats.merge(TombstoneStats::of(db.expect(name)));
    }
    stats
}

fn soak(case_id: &str, seed: u64, delete_policy: DeletePolicy) {
    let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
    let db = case.dataset.generate(soak_scale());
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds = soak_rounds();
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();

    // The compacting exact-provenance oracle: addresses the delta
    // generator and anchors the full-re-discovery comparison.
    let mut exact = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
        .unwrap_or_else(|e| panic!("{case_id}: oracle bootstrap failed: {e}"));

    let mut mat = MaintenanceEngine::with_options(
        InFine::default(),
        db.clone(),
        case.spec.clone(),
        MaintenanceMode::CoverOnly,
        delete_policy,
        ViewMode::Materialized,
    )
    .unwrap_or_else(|e| panic!("{case_id}: materialized bootstrap failed: {e}"));
    let mut virt = MaintenanceEngine::with_options(
        InFine::default(),
        db.clone(),
        case.spec.clone(),
        MaintenanceMode::CoverOnly,
        delete_policy,
        ViewMode::JoinIndex,
    )
    .unwrap_or_else(|e| panic!("{case_id}: join-index bootstrap failed: {e}"));
    // The soak is vacuous if the spec silently fell back to
    // materialization — pin the active backend, not just the request.
    assert_eq!(
        virt.active_view_mode(),
        Some(ViewMode::JoinIndex),
        "{case_id}: spec must be inside the virtual subset"
    );
    assert_eq!(
        mat.active_view_mode(),
        Some(ViewMode::Materialized),
        "{case_id}: materialized lane lost its backend"
    );

    let mut sharded: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let eng = ShardedEngine::with_options(
                InFine::default(),
                db.clone(),
                case.spec.clone(),
                n,
                InsertPolicy::default(),
                delete_policy,
                ViewMode::JoinIndex,
            )
            .unwrap_or_else(|e| panic!("{case_id}: {n}-shard bootstrap failed: {e}"));
            assert_eq!(
                eng.active_view_mode(),
                ViewMode::JoinIndex,
                "{case_id}: {n}-shard lane fell back to materialization"
            );
            eng
        })
        .collect();

    // All lanes bootstrap to the same exact-provenance report.
    for (n, eng) in SHARD_COUNTS.iter().zip(&sharded) {
        assert_eq!(
            eng.report().triples,
            virt.report().triples,
            "{case_id}: {n}-shard bootstrap diverged"
        );
    }
    assert_eq!(
        mat.report().triples,
        virt.report().triples,
        "{case_id}: bootstrap reports diverged across view modes"
    );

    for round in 0..rounds {
        let deltas = random_round(&mut rng, &exact, &tables);
        exact
            .apply(&deltas)
            .unwrap_or_else(|e| panic!("{case_id}: oracle round {round} failed: {e}"));
        let m = mat
            .apply(&deltas)
            .unwrap_or_else(|e| panic!("{case_id}: materialized round {round} failed: {e}"));
        let v = virt
            .apply(&deltas)
            .unwrap_or_else(|e| panic!("{case_id}: join-index round {round} failed: {e}"));

        // Triples, covers, and classification: JoinIndex == Materialized.
        assert_eq!(
            digest(&m),
            digest(&v),
            "{case_id}: view modes diverged at round {round}"
        );
        assert!(
            same_fds(&m.cover, &v.cover),
            "{case_id}: covers diverged at round {round}"
        );
        // ... == full re-discovery on the updated database (aligned by
        // attribute name — the backend's view schema and the pipeline's
        // report schema may order attributes differently).
        let full = InFine::default()
            .discover(exact.database(), &case.spec)
            .unwrap_or_else(|e| panic!("{case_id}: full discover at round {round} failed: {e}"));
        let map: Vec<usize> = (0..v.schema.len())
            .map(|i| full.schema.expect_id(v.schema.name(i)))
            .collect();
        let aligned = v
            .cover
            .iter()
            .map(|fd| {
                Fd::new(
                    fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                    map[fd.rhs],
                )
            })
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_unchecked(fd);
                s
            });
        assert!(
            aligned.equivalent(&full.fd_set()),
            "{case_id}: join-index cover ≠ full re-discovery at round {round}"
        );
        // The whole point: nothing view-shaped is resident.
        assert_eq!(
            virt.resident_view_rows(),
            0,
            "{case_id}: virtual lane materialized rows at round {round}"
        );

        for (&n, eng) in SHARD_COUNTS.iter().zip(sharded.iter_mut()) {
            let s = eng
                .apply(&deltas)
                .unwrap_or_else(|e| panic!("{case_id}: {n}-shard round {round} failed: {e}"));
            assert_eq!(
                digest(&s),
                digest(&v),
                "{case_id}: {n}-shard join-index diverged at round {round}"
            );
            assert_eq!(eng.resident_view_rows(), 0);
        }

        // Under tombstones the stored base tables must carry identical
        // accounting in both modes (same deltas, same policy); mid-soak,
        // vacuum every lane and pin the covers across the move.
        if round == rounds / 2 {
            if delete_policy == DeletePolicy::Tombstone {
                let (sm, sv) = (
                    stored_table_stats(mat.database()),
                    stored_table_stats(virt.database()),
                );
                assert_eq!(
                    sm, sv,
                    "{case_id}: stored-table tombstone accounting diverged"
                );
            }
            let cover_before = virt.fd_set();
            mat.vacuum();
            virt.vacuum();
            for eng in sharded.iter_mut() {
                eng.vacuum();
            }
            assert!(
                same_fds(&cover_before, &virt.fd_set()),
                "{case_id}: vacuum changed the join-index cover"
            );
            assert!(
                same_fds(&mat.fd_set(), &virt.fd_set()),
                "{case_id}: covers diverged across vacuum"
            );
            if delete_policy == DeletePolicy::Tombstone {
                let sv = stored_table_stats(virt.database());
                assert_eq!(
                    sv.physical_rows, sv.live_rows,
                    "{case_id}: vacuum left stored tombstones behind"
                );
            }
        }
    }

    // End of stream: deep self-checks (virtual view re-materialized and
    // re-mined from scratch) on the surviving lanes.
    virt.self_check();
    for eng in &sharded {
        eng.self_check();
    }
}

// ---------------------------------------------------------------------
// Durability: kill-and-recover in JoinIndex mode.
// ---------------------------------------------------------------------

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "infine-vmsoak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_engine(case_id: &str, db: &Database, spec: &infine_algebra::ViewSpec) -> ShardedEngine {
    let eng = ShardedEngine::with_options(
        InFine::default(),
        db.clone(),
        spec.clone(),
        2,
        InsertPolicy::default(),
        DeletePolicy::Tombstone,
        ViewMode::JoinIndex,
    )
    .unwrap_or_else(|e| panic!("{case_id}: durable bootstrap failed: {e}"));
    assert_eq!(eng.active_view_mode(), ViewMode::JoinIndex);
    eng
}

/// Feed the stream through a durable JoinIndex service; if `failpoints`
/// arms a crash site, respawn from snapshot + commitlog on worker death
/// and re-feed exactly the rounds recovery reports as lost. Returns the
/// final engine plus the last published read snapshot.
fn durable_run(
    case_id: &str,
    db: &Database,
    spec: &infine_algebra::ViewSpec,
    dir: &std::path::Path,
    failpoints: Option<FailPoints>,
    rounds: &[Vec<DeltaRelation>],
) -> (
    ShardedEngine,
    std::sync::Arc<infine_incremental::PublishedCovers>,
    usize,
) {
    let mut options = DurabilityOptions::new(dir).snapshot_policy(SnapshotPolicy::every_rounds(5));
    let crashing = failpoints.is_some();
    if let Some(fp) = failpoints {
        options = options.failpoints(fp);
    }
    let mut service = MaintenanceService::spawn_durable(
        durable_engine(case_id, db, spec),
        VacuumPolicy::at_fraction(0.5),
        options,
    )
    .unwrap_or_else(|e| panic!("{case_id}: durable spawn failed: {e}"));
    let reader = service.reader();
    let mut recoveries = 0usize;
    let mut i = 0usize;
    while i < rounds.len() {
        let died = match service.ingest(rounds[i].clone()) {
            Err(MaintenanceError::WorkerDied) => true,
            Err(e) => panic!("{case_id}: ingest {i} failed: {e}"),
            Ok(()) => match service.recv_report() {
                Some(Ok(_)) => {
                    i += 1;
                    false
                }
                Some(Err(MaintenanceError::WorkerDied)) | None => true,
                Some(Err(e)) => panic!("{case_id}: round {i} failed: {e}"),
            },
        };
        if died {
            assert!(crashing, "{case_id}: crash-free run lost its worker");
            while let Some(r) = service.try_recv_report() {
                assert!(r.is_err(), "{case_id}: report after death");
            }
            let info = service
                .respawn()
                .unwrap_or_else(|e| panic!("{case_id}: respawn failed: {e}"));
            assert!(!info.clean_shutdown);
            i = info.durable_rounds as usize;
            recoveries += 1;
            assert!(recoveries <= 2, "{case_id}: worker keeps dying");
        }
    }
    let snap = reader.current();
    let eng = service.shutdown().unwrap();
    (eng, snap, recoveries)
}

/// A durable JoinIndex service crashes mid-WAL-append, recovers from
/// snapshot + commitlog, and ends byte-equal to a never-crashed run —
/// engine state, published read snapshot, and one live probe round.
#[test]
fn joinindex_durability_kill_and_recover() {
    let case_id = "tpch_q2";
    let case = find(case_id).unwrap();
    let db = case.dataset.generate(soak_scale());
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();

    // Pre-generate one identical stream (non-empty rounds: the
    // ingest→report lockstep needs every ingest to produce a round).
    let mut rng = StdRng::seed_from_u64(0x51EA_0005);
    let mut oracle =
        MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone()).unwrap();
    let mut rounds: Vec<Vec<DeltaRelation>> = Vec::new();
    for _ in 0..soak_rounds() {
        let mut round = random_round(&mut rng, &oracle, &tables);
        if round.is_empty() {
            round.push(DeltaRelation::new(tables[0].clone(), DeltaBatch::new()));
        }
        oracle.apply(&round).unwrap();
        rounds.push(round);
    }
    let probe = {
        let mut r = random_round(&mut rng, &oracle, &tables);
        if r.is_empty() {
            r.push(DeltaRelation::new(tables[0].clone(), DeltaBatch::new()));
        }
        r
    };

    let ref_dir = tmpdir("ref");
    let (mut reference, ref_snap, _) =
        durable_run(case_id, &db, &case.spec, &ref_dir, None, &rounds);

    let crash_dir = tmpdir("crash");
    let mut fp = FailPoints::none();
    fp.arm(WAL_APPEND, 10);
    let (mut recovered, rec_snap, recoveries) =
        durable_run(case_id, &db, &case.spec, &crash_dir, Some(fp), &rounds);
    assert_eq!(recoveries, 1, "expected exactly one injected crash");

    // Recovery preserved the mode — the snapshot's view-mode record
    // round-tripped — and everything at rest matches the reference.
    assert_eq!(recovered.active_view_mode(), ViewMode::JoinIndex);
    assert_eq!(recovered.resident_view_rows(), 0);
    assert_eq!(
        reference.report().triples,
        recovered.report().triples,
        "triples diverged across recovery"
    );
    assert!(same_fds(&reference.fd_set(), &recovered.fd_set()));

    // Published reads agree too: same round frontier, same cover, same
    // triples through the wait-free reader.
    assert_eq!(ref_snap.round, rec_snap.round);
    assert!(same_fds(&ref_snap.cover, &rec_snap.cover));
    assert_eq!(ref_snap.triples, rec_snap.triples);

    // One live probe round pins post-recovery classification behavior.
    let want = digest(&reference.apply(&probe).unwrap());
    let got = digest(&recovered.apply(&probe).unwrap());
    assert_eq!(got, want, "probe round diverged after recovery");
    recovered.self_check();

    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&crash_dir).unwrap();
}

// ---------------------------------------------------------------------
// The four datagen databases × both delete policies.
// ---------------------------------------------------------------------

#[test]
fn tpch_view_modes_agree() {
    soak("tpch_q2", 0x51EA_0001, DeletePolicy::Compact);
}

#[test]
fn tpch_view_modes_agree_under_tombstones() {
    soak("tpch_q2", 0x51EA_0001, DeletePolicy::Tombstone);
}

#[test]
fn mimic_view_modes_agree() {
    soak(
        "mimic_q_patients_admissions",
        0x51EA_0002,
        DeletePolicy::Compact,
    );
}

#[test]
fn mimic_view_modes_agree_under_tombstones() {
    soak(
        "mimic_q_patients_admissions",
        0x51EA_0002,
        DeletePolicy::Tombstone,
    );
}

#[test]
fn ptc_view_modes_agree() {
    soak("ptc_connected_bond", 0x51EA_0003, DeletePolicy::Compact);
}

#[test]
fn ptc_view_modes_agree_under_tombstones() {
    soak("ptc_connected_bond", 0x51EA_0003, DeletePolicy::Tombstone);
}

#[test]
fn pte_view_modes_agree() {
    soak("pte_atm_drug", 0x51EA_0004, DeletePolicy::Compact);
}

#[test]
fn pte_view_modes_agree_under_tombstones() {
    soak("pte_atm_drug", 0x51EA_0004, DeletePolicy::Tombstone);
}
