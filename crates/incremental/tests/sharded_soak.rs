//! Randomized churn soak (satellite of the sharded-maintenance PR): ≥20
//! seeded random delta rounds — mixed inserts/deletes, varying batch
//! sizes, occasional empty batches, occasionally skipped tables — on one
//! representative view of each of the four datagen databases, pinning
//! after **every** round that the sharded engine (at 1, 2, and 4 shards)
//! produces the same merged cover, the same provenance triples, and the
//! same per-FD round classification as the unsharded engine — and that
//! both equal full `InFine::discover` re-discovery, triple for triple.
//!
//! Scale via `INFINE_SOAK_SCALE` (default 0.002) and round count via
//! `INFINE_SOAK_ROUNDS` (default 20, the satellite's floor) so CI can
//! turn the knob without touching the seed.

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_incremental::{MaintenanceEngine, MaintenanceReport, ShardedEngine};
use infine_relation::{DeltaBatch, DeltaRelation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn soak_rounds() -> usize {
    std::env::var("INFINE_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn soak_scale() -> Scale {
    Scale::of(
        std::env::var("INFINE_SOAK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.002),
    )
}

/// One random round: per base table, usually a mixed batch sized by a
/// per-round dice roll, sometimes an explicitly empty batch, sometimes no
/// batch at all.
fn random_round(
    rng: &mut StdRng,
    engine: &MaintenanceEngine,
    tables: &[String],
) -> Vec<DeltaRelation> {
    let mut round = Vec::new();
    for t in tables {
        match rng.gen_range(0..10u32) {
            0 => {}                                                            // table skipped this round
            1 => round.push(DeltaRelation::new(t.clone(), DeltaBatch::new())), // empty batch
            _ => {
                let rel = engine.database().expect(t);
                let max = (rel.nrows() / 20).max(3);
                let deletes = rng.gen_range(0..=max);
                let inserts = rng.gen_range(0..=max);
                round.push(DeltaRelation::new(
                    t.clone(),
                    random_delta(rng, rel, deletes, inserts),
                ));
            }
        }
    }
    round
}

/// The equality the tentpole pins: cover, triples, and per-FD round
/// classification all agree between the sharded and unsharded reports.
fn assert_reports_match(
    case: &str,
    shards: usize,
    round: usize,
    a: &MaintenanceReport,
    b: &MaintenanceReport,
) {
    assert_eq!(
        a.triples, b.triples,
        "{case}: sharded({shards}) triples diverged at round {round}"
    );
    assert!(
        same_fds(&a.cover, &b.cover),
        "{case}: sharded({shards}) cover diverged at round {round}"
    );
    let classify = |r: &MaintenanceReport| {
        let mut held: Vec<_> = r
            .held
            .iter()
            .map(|(t, s)| (t.fd, t.kind, t.subquery.clone(), *s))
            .collect();
        held.sort();
        let mut fresh = r.fresh.clone();
        fresh.sort();
        (held, fresh)
    };
    assert_eq!(
        classify(a),
        classify(b),
        "{case}: sharded({shards}) classification diverged at round {round}"
    );
}

fn soak(case_id: &str, seed: u64) {
    let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
    let db = case.dataset.generate(soak_scale());
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds = soak_rounds();

    let mut unsharded = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
        .unwrap_or_else(|e| panic!("{case_id}: unsharded bootstrap failed: {e}"));
    let mut sharded: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            ShardedEngine::new(InFine::default(), db.clone(), case.spec.clone(), n)
                .unwrap_or_else(|e| panic!("{case_id}: {n}-shard bootstrap failed: {e}"))
        })
        .collect();
    for (n, eng) in SHARD_COUNTS.iter().zip(&sharded) {
        assert_eq!(
            eng.report().triples,
            unsharded.report().triples,
            "{case_id}: {n}-shard bootstrap diverged"
        );
    }

    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();
    for round in 0..rounds {
        let deltas = random_round(&mut rng, &unsharded, &tables);
        let reference = unsharded
            .apply(&deltas)
            .unwrap_or_else(|e| panic!("{case_id}: unsharded round {round} failed: {e}"));
        for (&n, eng) in SHARD_COUNTS.iter().zip(sharded.iter_mut()) {
            let report = eng
                .apply(&deltas)
                .unwrap_or_else(|e| panic!("{case_id}: {n}-shard round {round} failed: {e}"));
            assert_reports_match(case_id, n, round, &report, &reference);
        }
        // ... and the maintained state equals full re-discovery on the
        // updated database, triple for triple — every round.
        let full = InFine::default()
            .discover(unsharded.database(), &case.spec)
            .unwrap_or_else(|e| panic!("{case_id}: full discover at round {round} failed: {e}"));
        assert_eq!(
            unsharded.report().triples,
            full.triples,
            "{case_id}: unsharded ≠ full re-discovery at round {round}"
        );
    }
}

#[test]
fn tpch_soak_sharded_equals_unsharded_equals_full() {
    soak("tpch_q2", 0x50AC_0001);
}

#[test]
fn mimic_soak_sharded_equals_unsharded_equals_full() {
    soak("mimic_q_patients_admissions", 0x50AC_0002);
}

#[test]
fn ptc_soak_sharded_equals_unsharded_equals_full() {
    soak("ptc_connected_bond", 0x50AC_0003);
}

#[test]
fn pte_soak_sharded_equals_unsharded_equals_full() {
    soak("pte_atm_drug", 0x50AC_0004);
}
