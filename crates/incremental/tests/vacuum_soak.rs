//! Randomized tombstone/vacuum churn soak (satellite of the tombstoned
//! deletes + vacuum PR): ≥20 seeded random delta rounds — mixed
//! inserts/deletes with a delete-heavy bias, occasional empty batches,
//! occasionally skipped tables — on one representative view of each of
//! the four datagen databases, with the sharded engine running
//! [`DeletePolicy::Tombstone`] at 1, 2, and 4 shards against a
//! compacting unsharded reference.
//!
//! Pins, after **every** round: the tombstone engines' covers, triples,
//! and per-FD classifications equal the compacting reference's — and the
//! reference equals full `InFine::discover` re-discovery. Pins, after
//! **every vacuum** (every `INFINE_VACUUM_EVERY` rounds, default 5):
//!
//! * vacuumed fragment relations are **byte-equal** (codes,
//!   dictionaries, null codes) to a from-scratch rebuild of their live
//!   rows;
//! * every fragment engine's cover state survives
//!   [`MaintenanceEngine::self_check`] — covers equal fresh mines,
//!   backing PLIs equal rebuilds, witnesses name live violating pairs,
//!   row maps agree with live counts;
//! * no dead row remains anywhere.
//!
//! A second suite bounds memory: dictionary entries and physical row
//! counts (rid columns included, via the cover-only view engine) stay
//! within a constant factor of a freshly bootstrapped engine's across
//! ≥20 delete-heavy rounds with periodic vacuums.
//!
//! Scale via `INFINE_SOAK_SCALE` (default 0.002), rounds via
//! `INFINE_SOAK_ROUNDS` (default 20), vacuum period via
//! `INFINE_VACUUM_EVERY` (default 5).

use infine_core::InFine;
use infine_datagen::{find, random_delta, Scale};
use infine_discovery::same_fds;
use infine_incremental::{
    DeletePolicy, InsertPolicy, MaintenanceEngine, MaintenanceMode, MaintenanceReport,
    ShardedEngine, ViewMode,
};
use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn soak_rounds() -> usize {
    std::env::var("INFINE_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn soak_scale() -> Scale {
    Scale::of(
        std::env::var("INFINE_SOAK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.002),
    )
}

fn vacuum_every() -> usize {
    std::env::var("INFINE_VACUUM_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// One random round, biased towards deletes (the path this PR fixes):
/// per base table, usually a mixed batch, sometimes an explicitly empty
/// batch, sometimes no batch at all.
fn random_round(rng: &mut StdRng, db: &Database, tables: &[String]) -> Vec<DeltaRelation> {
    let mut round = Vec::new();
    for t in tables {
        match rng.gen_range(0..10u32) {
            0 => {}
            1 => round.push(DeltaRelation::new(t.clone(), DeltaBatch::new())),
            _ => {
                let rel = db.expect(t);
                let max = (rel.live_rows() / 15).max(3);
                let deletes = rng.gen_range(0..=max);
                let inserts = rng.gen_range(0..=max / 2);
                round.push(DeltaRelation::new(
                    t.clone(),
                    random_delta(rng, rel, deletes, inserts),
                ));
            }
        }
    }
    round
}

/// Byte-equality of a relation against a rebuild from its own live rows
/// — the compact invariant a vacuum must restore exactly.
fn assert_rebuild_equal(rel: &Relation, context: &str) {
    assert!(
        !rel.has_tombstones(),
        "{context}: tombstones survived vacuum"
    );
    let rows: Vec<Vec<Value>> = (0..rel.nrows()).map(|r| rel.row(r)).collect();
    let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
    let names: Vec<&str> = (0..rel.ncols()).map(|c| rel.schema.name(c)).collect();
    let rebuilt = relation_from_rows(&rel.name, &names, &refs);
    for c in 0..rel.ncols() {
        assert_eq!(
            rel.column(c).codes,
            rebuilt.column(c).codes,
            "{context}: codes of column {c} diverged from rebuild"
        );
        assert_eq!(
            rel.column(c).dict.as_slice(),
            rebuilt.column(c).dict.as_slice(),
            "{context}: dictionary of column {c} diverged from rebuild"
        );
        assert_eq!(
            rel.column(c).null_code,
            rebuilt.column(c).null_code,
            "{context}: null code of column {c} diverged from rebuild"
        );
    }
}

fn assert_reports_match(
    case: &str,
    shards: usize,
    round: usize,
    a: &MaintenanceReport,
    b: &MaintenanceReport,
) {
    assert_eq!(
        a.triples, b.triples,
        "{case}: tombstoned sharded({shards}) triples diverged at round {round}"
    );
    assert!(
        same_fds(&a.cover, &b.cover),
        "{case}: tombstoned sharded({shards}) cover diverged at round {round}"
    );
    let classify = |r: &MaintenanceReport| {
        let mut held: Vec<_> = r
            .held
            .iter()
            .map(|(t, s)| (t.fd, t.kind, t.subquery.clone(), *s))
            .collect();
        held.sort();
        let mut fresh = r.fresh.clone();
        fresh.sort();
        (held, fresh)
    };
    assert_eq!(
        classify(a),
        classify(b),
        "{case}: tombstoned sharded({shards}) classification diverged at round {round}"
    );
}

fn soak(case_id: &str, seed: u64) {
    let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
    let db = case.dataset.generate(soak_scale());
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds = soak_rounds();
    let period = vacuum_every();

    let mut reference = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
        .unwrap_or_else(|e| panic!("{case_id}: reference bootstrap failed: {e}"));
    let mut tombstoned: Vec<ShardedEngine> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            ShardedEngine::with_options(
                InFine::default(),
                db.clone(),
                case.spec.clone(),
                n,
                InsertPolicy::default(),
                DeletePolicy::Tombstone,
                ViewMode::default(),
            )
            .unwrap_or_else(|e| panic!("{case_id}: {n}-shard tombstone bootstrap failed: {e}"))
        })
        .collect();

    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();
    for round in 0..rounds {
        let deltas = random_round(&mut rng, reference.database(), &tables);
        let expected = reference
            .apply(&deltas)
            .unwrap_or_else(|e| panic!("{case_id}: reference round {round} failed: {e}"));
        for (&n, eng) in SHARD_COUNTS.iter().zip(tombstoned.iter_mut()) {
            let report = eng
                .apply(&deltas)
                .unwrap_or_else(|e| panic!("{case_id}: {n}-shard round {round} failed: {e}"));
            assert_reports_match(case_id, n, round, &report, &expected);
        }
        // Reference == full re-discovery, every round.
        let full = InFine::default()
            .discover(reference.database(), &case.spec)
            .unwrap_or_else(|e| panic!("{case_id}: full discover at round {round} failed: {e}"));
        assert_eq!(
            reference.report().triples,
            full.triples,
            "{case_id}: reference ≠ full re-discovery at round {round}"
        );

        if (round + 1) % period == 0 {
            for (&n, eng) in SHARD_COUNTS.iter().zip(tombstoned.iter_mut()) {
                // Fragments that accumulated garbage must come out of the
                // vacuum byte-equal to a rebuild.
                let mut dirty: Vec<(usize, String)> = Vec::new();
                for s in 0..eng.shards() {
                    for t in &tables {
                        if eng.shard_database(s).expect(t).has_tombstones() {
                            dirty.push((s, t.clone()));
                        }
                    }
                }
                let triples_before = eng.report().triples.clone();
                eng.vacuum();
                assert_eq!(
                    eng.tombstone_stats().dead_rows(),
                    0,
                    "{case_id}: {n}-shard vacuum left garbage at round {round}"
                );
                for (s, t) in dirty {
                    assert_rebuild_equal(
                        eng.shard_database(s).expect(&t),
                        &format!("{case_id}: {n}-shard round {round} shard {s} table {t}"),
                    );
                }
                // Covers, PLIs, witnesses, row maps: all pinned against
                // from-scratch rebuilds; answers unchanged.
                eng.self_check();
                assert_eq!(
                    eng.report().triples,
                    triples_before,
                    "{case_id}: {n}-shard vacuum changed the report at round {round}"
                );
            }
        }
    }
}

#[test]
fn tpch_vacuum_soak() {
    soak("tpch_q2", 0x7AC0_0001);
}

#[test]
fn mimic_vacuum_soak() {
    soak("mimic_q_patients_admissions", 0x7AC0_0002);
}

#[test]
fn ptc_vacuum_soak() {
    soak("ptc_connected_bond", 0x7AC0_0003);
}

#[test]
fn pte_vacuum_soak() {
    soak("pte_atm_drug", 0x7AC0_0004);
}

/// Memory stays bounded under sustained delete-heavy churn with periodic
/// vacuums: physical rows and dictionary entries (rid columns of the
/// cover-only view included) never exceed a small constant factor of
/// what a freshly bootstrapped engine on the same live data holds.
#[test]
fn churn_memory_stays_bounded_with_periodic_vacuum() {
    let case = find("tpch_q2").expect("known case");
    let db = case.dataset.generate(soak_scale());
    let mut rng = StdRng::seed_from_u64(0x7AC0_00FF);
    let rounds = soak_rounds().max(20);
    let period = vacuum_every();

    let mut engine = MaintenanceEngine::with_options(
        InFine::default(),
        db,
        case.spec.clone(),
        MaintenanceMode::CoverOnly,
        DeletePolicy::Tombstone,
        ViewMode::default(),
    )
    .expect("bootstrap");
    let tables: Vec<String> = case
        .spec
        .base_tables()
        .into_iter()
        .map(str::to_string)
        .collect();

    let mut peak_factor = 0.0f64;
    for round in 0..rounds {
        // Delete-heavy churn: twice as many deletes as inserts.
        let mut deltas = Vec::new();
        for t in &tables {
            let rel = engine.database().expect(t);
            let max = (rel.live_rows() / 12).max(2);
            deltas.push(DeltaRelation::new(
                t.clone(),
                random_delta(&mut rng, rel, max, max / 2),
            ));
        }
        engine.apply(&deltas).expect("round");
        if (round + 1) % period == 0 {
            engine.vacuum();
            assert_eq!(engine.tombstone_stats().dead_rows(), 0);
        }

        // Bound: compare against a from-scratch engine over the live
        // data (the compact footprint) — the factor must stay small
        // regardless of how much history has flowed through.
        let current = engine.tombstone_stats();
        let mut compact_db = Database::new();
        for t in engine.database().names() {
            let (v, _) = engine.database().expect(t).clone().vacuum();
            compact_db.insert(v);
        }
        let fresh = MaintenanceEngine::with_options(
            InFine::default(),
            compact_db,
            case.spec.clone(),
            MaintenanceMode::CoverOnly,
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .expect("fresh bootstrap")
        .tombstone_stats();
        let row_factor = current.physical_rows as f64 / fresh.physical_rows.max(1) as f64;
        let dict_factor = current.dict_entries as f64 / fresh.dict_entries.max(1) as f64;
        peak_factor = peak_factor.max(row_factor).max(dict_factor);
        assert!(
            row_factor <= 3.0,
            "round {round}: physical rows grew to {row_factor:.2}x the compact footprint \
             ({} vs {})",
            current.physical_rows,
            fresh.physical_rows
        );
        assert!(
            dict_factor <= 3.0,
            "round {round}: dictionary entries grew to {dict_factor:.2}x the compact footprint \
             ({} vs {})",
            current.dict_entries,
            fresh.dict_entries
        );
    }
    eprintln!("# churn memory bound: peak factor {peak_factor:.2} across {rounds} rounds");
}
