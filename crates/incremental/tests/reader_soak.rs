//! Reader-consistency soak for the wait-free published cover read path
//! (the MVCC-lite tentpole's acceptance test): concurrent
//! [`CoverReader`]s sample while a durable service churns through a
//! seeded stream, with an injected worker crash and respawn mid-stream.
//!
//! Pinned invariants, at 1, 2, and 4 shards:
//! - every sampled snapshot's cover equals the *exact* cover the
//!   driver's paired `recv_report` recorded for that round id (round 0
//!   is the bootstrap cover) — readers never see a torn or intermediate
//!   state;
//! - round ids observed through one handle are monotonically
//!   non-decreasing, including across the injected crash and
//!   [`MaintenanceService::respawn`];
//! - a fresh [`MaintenanceService::recover`] of the same directory hands
//!   out readers that resume exactly at [`RecoveryInfo::durable_rounds`]
//!   with the final cover.
//!
//! Friendly to `INFINE_THREADS=2` CI lanes: two sampler threads per
//! shard count, tiny tables, short stream.

use infine_core::InFine;
use infine_discovery::{same_fds, FdSet};
use infine_durability::failpoint::WAL_APPEND;
use infine_durability::{FailPoints, SnapshotPolicy};
use infine_incremental::{
    DurabilityOptions, MaintenanceError, MaintenanceService, ShardedEngine, VacuumPolicy,
};
use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ROUNDS: u64 = 24;
/// The WAL append whose failpoint panic kills the worker mid-stream.
const CRASH_AT: u64 = 8;
const READERS: usize = 2;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "infine-readsoak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "p",
        &["pid", "grp", "flag"],
        &[
            &[Value::Int(1), Value::str("a"), Value::Int(0)],
            &[Value::Int(2), Value::str("a"), Value::Int(0)],
            &[Value::Int(3), Value::str("b"), Value::Int(1)],
            &[Value::Int(4), Value::str("b"), Value::Int(1)],
        ],
    ));
    db.insert(relation_from_rows(
        "q",
        &["pid", "site"],
        &[
            &[Value::Int(1), Value::str("x")],
            &[Value::Int(2), Value::str("x")],
            &[Value::Int(3), Value::str("y")],
        ],
    ));
    db
}

fn view() -> infine_algebra::ViewSpec {
    infine_algebra::ViewSpec::base("p").inner_join(infine_algebra::ViewSpec::base("q"), &["pid"])
}

/// Round `i` of the seeded churn: one new joined (p, q) pair whose
/// attribute pattern varies with `i`, so the maintained cover actually
/// moves over the stream instead of staying constant.
fn churn_round(i: u64) -> Vec<DeltaRelation> {
    let pid = 100 + i as i64;
    let grp = ["a", "b", "c"][(i % 3) as usize];
    let site = ["x", "y", "z", "x"][(i % 4) as usize];
    let mut p = DeltaBatch::new();
    p.insert(vec![
        Value::Int(pid),
        Value::str(grp),
        Value::Int((i % 5) as i64),
    ]);
    let mut q = DeltaBatch::new();
    q.insert(vec![Value::Int(pid), Value::str(site)]);
    vec![
        DeltaRelation::new("p".to_string(), p),
        DeltaRelation::new("q".to_string(), q),
    ]
}

/// One sampler's trace: the distinct (round, cover) pairs it observed,
/// in observation order (monotonicity is asserted inline, at sample
/// time).
fn sample_loop(
    reader: infine_incremental::CoverReader,
    stop: Arc<AtomicBool>,
    tag: String,
) -> Vec<(u64, FdSet)> {
    let mut observed: Vec<(u64, FdSet)> = Vec::new();
    let mut last = 0u64;
    loop {
        let snap = reader.current();
        assert!(
            snap.round >= last,
            "{tag}: round went backwards: {} after {last}",
            snap.round
        );
        last = snap.round;
        if observed.last().map(|(r, _)| *r) != Some(snap.round) {
            observed.push((snap.round, snap.cover.clone()));
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        std::thread::yield_now();
    }
    observed
}

fn soak(shards: usize) {
    let tag = format!("{shards}sh");
    let dir = tmpdir(&tag);
    let engine = ShardedEngine::new(InFine::default(), small_db(), view(), shards).unwrap();
    // Round 0's published cover is the bootstrap state.
    let mut cover_by_round: Vec<FdSet> = vec![engine.fd_set()];
    let mut fp = FailPoints::none();
    fp.arm(WAL_APPEND, CRASH_AT);
    let mut service = MaintenanceService::spawn_durable(
        engine,
        VacuumPolicy::default(),
        DurabilityOptions::new(&dir)
            .snapshot_policy(SnapshotPolicy::every_rounds(5))
            .failpoints(fp),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let samplers: Vec<_> = (0..READERS)
        .map(|r| {
            let reader = service.reader();
            let stop = Arc::clone(&stop);
            let tag = format!("{tag}/reader{r}");
            std::thread::spawn(move || sample_loop(reader, stop, tag))
        })
        .collect();

    // Drive the stream in ingest→report lockstep, recording each round's
    // exact cover from its report; on the injected death, respawn from
    // disk and resume where durability says — samplers keep running
    // across the crash, the respawn, and every snapshot cut.
    let mut respawns = 0usize;
    let mut i = 0u64;
    while i < ROUNDS {
        let died = match service.ingest(churn_round(i)) {
            Err(MaintenanceError::WorkerDied) => true,
            Err(e) => panic!("{tag}: ingest {i} failed: {e}"),
            Ok(()) => match service.recv_report() {
                Some(Ok(report)) => {
                    cover_by_round.push(report.cover.clone());
                    assert_eq!(cover_by_round.len() as u64 - 1, i + 1);
                    i += 1;
                    false
                }
                Some(Err(MaintenanceError::WorkerDied)) | None => true,
                Some(Err(e)) => panic!("{tag}: round {i} failed: {e}"),
            },
        };
        if died {
            while let Some(r) = service.try_recv_report() {
                assert!(r.is_err(), "{tag}: report after death");
            }
            let info = service
                .respawn()
                .unwrap_or_else(|e| panic!("{tag}: respawn failed: {e}"));
            // Lost rounds lose their cover records too: resume both the
            // stream and the oracle vector at the durable head.
            cover_by_round.truncate(info.durable_rounds as usize + 1);
            i = info.durable_rounds;
            respawns += 1;
            assert!(respawns <= 1, "{tag}: worker keeps dying");
        }
    }
    assert_eq!(respawns, 1, "{tag}: expected exactly one injected crash");

    stop.store(true, Ordering::Relaxed);
    let final_round = {
        // The last publish is the last round: spin one reader until it
        // lands so the traces below include the stream's end state.
        let reader = service.reader();
        let t0 = std::time::Instant::now();
        loop {
            let snap = reader.current();
            if snap.round == ROUNDS {
                break snap;
            }
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "{tag}: final round never published (at {})",
                snap.round
            );
            std::thread::yield_now();
        }
    };
    assert!(
        same_fds(&final_round.cover, &cover_by_round[ROUNDS as usize]),
        "{tag}: final published cover diverged from the last report"
    );

    // Every sampled snapshot is some round's exact reported cover.
    for sampler in samplers {
        let observed = sampler.join().unwrap();
        assert!(!observed.is_empty());
        for (round, cover) in observed {
            let want = cover_by_round
                .get(round as usize)
                .unwrap_or_else(|| panic!("{tag}: sampled round {round} was never reported"));
            assert!(
                same_fds(&cover, want),
                "{tag}: sampled cover at round {round} is not that round's reported cover"
            );
        }
    }

    // A fresh recovery of the same directory resumes readers exactly at
    // the durable head with the final cover.
    drop(service);
    let (recovered, info) = MaintenanceService::recover(
        DurabilityOptions::new(&dir),
        InFine::default(),
        view(),
        VacuumPolicy::default(),
    )
    .unwrap();
    assert_eq!(info.durable_rounds, ROUNDS, "{tag}: clean-shutdown rounds");
    let snap = recovered.reader().current();
    assert_eq!(snap.round, info.durable_rounds, "{tag}: recovered round");
    assert!(
        same_fds(&snap.cover, &cover_by_round[ROUNDS as usize]),
        "{tag}: recovered reader cover diverged"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn readers_observe_exact_round_covers_1_shard() {
    soak(1);
}

#[test]
fn readers_observe_exact_round_covers_2_shards() {
    soak(2);
}

#[test]
fn readers_observe_exact_round_covers_4_shards() {
    soak(4);
}
