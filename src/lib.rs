//! InFine umbrella crate — re-exports the full public API of the
//! workspace: relational substrate, SPJ algebra, partitions, the four
//! FD-discovery baselines, and the InFine provenance pipeline.
//!
//! See the README for a tour; `infine_core::InFine` is the main entry
//! point.

pub use infine_algebra as algebra;
pub use infine_core as core;
pub use infine_datagen as datagen;
pub use infine_discovery as discovery;
pub use infine_partitions as partitions;
pub use infine_relation as relation;

pub use infine_algebra::{JoinOp, Predicate, ViewSpec};
pub use infine_core::{FdKind, InFine, InFineConfig, InFineReport, ProvenanceTriple};
pub use infine_discovery::{Algorithm, Fd, FdSet};
pub use infine_relation::{AttrSet, Database, Relation, Schema, Value};
