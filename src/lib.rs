//! InFine umbrella crate — re-exports the full public API of the
//! workspace: relational substrate, SPJ algebra, partitions, the four
//! FD-discovery baselines, the InFine provenance pipeline, and the
//! incremental FD maintenance engine.
//!
//! `infine_core::InFine` is the main discovery entry point;
//! `infine_incremental::MaintenanceEngine` keeps a discovered FD set
//! current under base-table deltas without full re-discovery.

pub use infine_algebra as algebra;
pub use infine_core as core;
pub use infine_datagen as datagen;
pub use infine_discovery as discovery;
pub use infine_incremental as incremental;
pub use infine_partitions as partitions;
pub use infine_relation as relation;

pub use infine_algebra::{JoinOp, Predicate, ViewSpec};
pub use infine_core::{FdKind, InFine, InFineConfig, InFineReport, ProvenanceTriple};
pub use infine_discovery::{Algorithm, Fd, FdSet};
pub use infine_incremental::{FdStatus, MaintenanceEngine, MaintenanceMode, MaintenanceReport};
pub use infine_relation::{AttrSet, Database, DeltaBatch, DeltaRelation, Relation, Schema, Value};
