//! End-to-end completeness & correctness (Theorems 5 and 6) of the InFine
//! pipeline over the entire 16-view catalog of Table II, at test scale.
//!
//! For every view: materialize it, run TANE on the result (the oracle),
//! run InFine on the base tables + view spec, and check
//!
//! * **correctness** — every InFine FD holds on the materialized view;
//! * **completeness** — the two FD sets are logically equivalent
//!   (Theorem 5 is stated up to equivalence: `∀d ∃d' . d ≡ d'`).

use infine_algebra::execute;
use infine_core::{all_hold, InFine};
use infine_datagen::{catalog, Scale};
use infine_discovery::{Algorithm, Fd, FdSet};
use infine_relation::{AttrSet, Relation, Schema};

/// Translate InFine's FDs (over its report schema) into the oracle view's
/// attribute ids by display name.
fn align(fds: &[infine_core::ProvenanceTriple], from: &Schema, to: &Schema) -> FdSet {
    let map: Vec<usize> = (0..from.len())
        .map(|i| to.expect_id(from.name(i)))
        .collect();
    let mut out = FdSet::new();
    for t in fds {
        out.insert_unchecked(Fd::new(
            t.fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
            map[t.fd.rhs],
        ));
    }
    out
}

fn check_case(case: &infine_datagen::QueryCase, view: &Relation, scale: Scale) {
    let db = case.dataset.generate(scale);
    let report = InFine::default()
        .discover(&db, &case.spec)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", case.id));

    let infds = align(&report.triples, &report.schema, &view.schema);

    // Theorem 6: correctness.
    assert!(
        all_hold(view, &infds),
        "{}: some InFine FD does not hold on the view",
        case.id
    );

    // Theorem 5: completeness up to logical equivalence.
    let oracle = Algorithm::Tane.discover(view);
    assert!(
        infds.equivalent(&oracle),
        "{}: InFine ≢ oracle\nInFine:\n{}\noracle:\n{}",
        case.id,
        infds.render(&view.schema),
        oracle.render(&view.schema)
    );
}

#[test]
fn all_sixteen_views_match_the_oracle() {
    let scale = Scale::of(0.003);
    for case in catalog() {
        let db = case.dataset.generate(scale);
        let view =
            execute(&case.spec, &db).unwrap_or_else(|e| panic!("{}: view failed: {e}", case.id));
        check_case(&case, &view, scale);
    }
}

#[test]
fn equivalence_is_stable_across_seeds() {
    for seed in [1u64, 42, 2024] {
        let scale = Scale {
            factor: 0.002,
            seed,
        };
        for case in catalog().into_iter().filter(|c| {
            matches!(
                c.id,
                "pte_atm_drug" | "ptc_atom_molecule" | "mimic_q_patients_admissions"
            )
        }) {
            let db = case.dataset.generate(scale);
            let view = execute(&case.spec, &db).unwrap();
            check_case(&case, &view, scale);
        }
    }
}
