//! Provenance-kind semantics on crafted scenarios: each FD kind of
//! Definition 8 is exercised by a construction that forces it, and the
//! sub-query component points at the right node of the view tree.

use infine_algebra::{JoinOp, Predicate, ViewSpec};
use infine_core::{FdKind, InFine};
use infine_discovery::Fd;
use infine_relation::{relation_from_rows, AttrSet, Database, Value};

fn int_rows(name: &str, attrs: &[&str], rows: &[&[i64]]) -> infine_relation::Relation {
    let vrows: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
        .collect();
    let refs: Vec<&[Value]> = vrows.iter().map(|r| r.as_slice()).collect();
    relation_from_rows(name, attrs, &refs)
}

#[test]
fn base_fds_carry_their_table_as_subquery() {
    let mut db = Database::new();
    db.insert(int_rows("t", &["k", "v"], &[&[1, 10], &[2, 20]]));
    let spec = ViewSpec::base("t");
    let report = InFine::default().discover(&db, &spec).unwrap();
    assert!(!report.triples.is_empty());
    for t in &report.triples {
        assert_eq!(t.kind, FdKind::Base);
        assert_eq!(t.subquery, "t");
    }
}

#[test]
fn upstaged_selection_points_at_the_sigma_node() {
    let mut db = Database::new();
    // x → y violated only where flag = 1.
    db.insert(int_rows(
        "t",
        &["x", "y", "flag"],
        &[&[1, 10, 0], &[1, 10, 0], &[1, 99, 1], &[2, 20, 0]],
    ));
    let spec = ViewSpec::base("t").select(Predicate::eq("flag", 0i64));
    let report = InFine::default().discover(&db, &spec).unwrap();
    let x = report.schema.expect_id("x");
    let y = report.schema.expect_id("y");
    let t = report
        .triples
        .iter()
        .find(|t| t.fd == Fd::new(AttrSet::single(x), y))
        .expect("x → y must be upstaged");
    assert_eq!(t.kind, FdKind::UpstagedSelection);
    assert!(t.subquery.contains("σ"), "subquery: {}", t.subquery);
}

#[test]
fn upstaged_left_and_right_depend_on_which_side_dangles() {
    let mut db = Database::new();
    // Left violator (k=9) has no right partner → upstaged LEFT.
    db.insert(int_rows(
        "l",
        &["k", "a", "b"],
        &[&[1, 5, 7], &[2, 6, 9], &[9, 5, 8]],
    ));
    // Right violator (k=8) has no left partner → upstaged RIGHT.
    db.insert(int_rows(
        "r",
        &["k", "c", "d"],
        &[&[1, 3, 4], &[2, 7, 6], &[8, 3, 5]],
    ));
    let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    let a = report.schema.expect_id("a");
    let b = report.schema.expect_id("b");
    let c = report.schema.expect_id("c");
    let d = report.schema.expect_id("d");
    let kind_of = |lhs: usize, rhs: usize| {
        report
            .triples
            .iter()
            .find(|t| t.fd == Fd::new(AttrSet::single(lhs), rhs))
            .map(|t| t.kind)
    };
    assert_eq!(
        kind_of(a, b),
        Some(FdKind::UpstagedLeft),
        "{}",
        report.render()
    );
    assert_eq!(
        kind_of(c, d),
        Some(FdKind::UpstagedRight),
        "{}",
        report.render()
    );
}

#[test]
fn inferred_fd_composes_through_join_keys() {
    let mut db = Database::new();
    // a → k in l, k → b in r ⇒ a → b inferred on the join.
    db.insert(int_rows(
        "l",
        &["k", "a"],
        &[&[1, 100], &[2, 200], &[1, 100]],
    ));
    db.insert(int_rows("r", &["k", "b"], &[&[1, 11], &[2, 22]]));
    let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    let a = report.schema.expect_id("a");
    let b = report.schema.expect_id("b");
    let t = report
        .triples
        .iter()
        .find(|t| t.fd == Fd::new(AttrSet::single(a), b))
        .expect("a → b must be discovered");
    assert_eq!(t.kind, FdKind::Inferred, "{}", report.render());
    assert!(t.subquery.contains("⋈"));
}

#[test]
fn theorem3_fd_is_classified_as_join_fd() {
    // The appendix counterexample: AA' → b holds on the join but cannot
    // be inferred from the side FD sets.
    let mut db = Database::new();
    db.insert(int_rows(
        "l",
        &["x", "a"],
        &[&[0, 0], &[1, 0], &[1, 1], &[2, 2]],
    ));
    db.insert(int_rows(
        "r",
        &["y", "ap", "b"],
        &[&[0, 0, 0], &[1, 0, 0], &[1, 1, 1], &[2, 1, 0]],
    ));
    let spec = ViewSpec::base("l").join(ViewSpec::base("r"), JoinOp::Inner, &[("x", "y")]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    let a = report.schema.expect_id("a");
    let ap = report.schema.expect_id("ap");
    let b = report.schema.expect_id("b");
    let lhs: AttrSet = [a, ap].into_iter().collect();
    let t = report
        .triples
        .iter()
        .find(|t| t.fd == Fd::new(lhs, b))
        .expect("AA' → b must be discovered");
    assert_eq!(t.kind, FdKind::JoinFd, "{}", report.render());
}

#[test]
fn key_equivalence_fds_are_inferred_on_inner_joins() {
    let mut db = Database::new();
    db.insert(int_rows("l", &["k", "a"], &[&[1, 0], &[2, 0]]));
    db.insert(int_rows("r", &["k", "b"], &[&[1, 0], &[2, 0]]));
    let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    let lk = report.schema.expect_id("l.k");
    let rk = report.schema.expect_id("r.k");
    for (from, to) in [(lk, rk), (rk, lk)] {
        let t = report
            .triples
            .iter()
            .find(|t| t.fd == Fd::new(AttrSet::single(from), to))
            .unwrap_or_else(|| panic!("key equivalence missing:\n{}", report.render()));
        // discovered logically, not mined
        assert_ne!(t.kind, FdKind::JoinFd);
    }
}

#[test]
fn projection_of_join_keys_keeps_chained_fds() {
    // a → k in l, k → b in r; the final projection drops BOTH key columns
    // yet a → b must survive — composed by inferFDs at the join node and
    // carried through the closure-based projection restriction.
    let mut db = Database::new();
    db.insert(int_rows("l", &["k", "a"], &[&[10, 1], &[20, 2], &[10, 3]]));
    db.insert(int_rows("r", &["k", "b"], &[&[10, 5], &[20, 6]]));
    let spec = ViewSpec::base("l")
        .inner_join(ViewSpec::base("r"), &["k"])
        .project(&["a", "b"]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    assert!(report.schema.id_of("l.k").is_none(), "keys projected away");
    let a = report.schema.expect_id("a");
    let b = report.schema.expect_id("b");
    let t = report
        .triples
        .iter()
        .find(|t| t.fd == Fd::new(AttrSet::single(a), b))
        .unwrap_or_else(|| panic!("a → b must survive:\n{}", report.render()));
    assert_eq!(t.kind, FdKind::Inferred, "{}", report.render());
}

#[test]
fn minimality_eviction_retags_base_fds() {
    // Base FD ab → c; the join drops the row that blocked a → c, so the
    // smaller upstaged FD must *replace* the base one in the canonical set.
    let mut db = Database::new();
    db.insert(int_rows(
        "l",
        &["k", "a", "b", "c"],
        &[&[1, 1, 1, 1], &[2, 2, 2, 5], &[9, 1, 9, 7]], // k=9 dangles
    ));
    db.insert(int_rows("r", &["k", "z"], &[&[1, 0], &[2, 0]]));
    let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    let a = report.schema.expect_id("a");
    let c = report.schema.expect_id("c");
    // a → c minimal on the view (k=9 removed)
    let t = report
        .triples
        .iter()
        .find(|t| t.fd == Fd::new(AttrSet::single(a), c))
        .expect("a → c must hold on the view");
    assert_eq!(t.kind, FdKind::UpstagedLeft);
    // no surviving superset FD with rhs c and lhs ⊇ {a}
    for t in &report.triples {
        if t.fd.rhs == c {
            assert!(
                !AttrSet::single(a).is_strict_subset(t.fd.lhs),
                "non-minimal FD survived: {}",
                t.render(&report.schema)
            );
        }
    }
}

#[test]
fn semi_join_discards_other_side_and_mixed_kinds() {
    let mut db = Database::new();
    db.insert(int_rows("l", &["k", "a"], &[&[1, 0], &[2, 0], &[9, 1]]));
    db.insert(int_rows("r", &["k", "b"], &[&[1, 0], &[2, 1]]));
    let spec = ViewSpec::base("l").join(ViewSpec::base("r"), JoinOp::LeftSemi, &[("k", "k")]);
    let report = InFine::default().discover(&db, &spec).unwrap();
    // only left attributes in the schema
    assert!(report.schema.id_of("b").is_none());
    // no inferred / joinFD kinds possible
    for t in &report.triples {
        assert!(matches!(t.kind, FdKind::Base | FdKind::UpstagedLeft));
    }
    // ∅ → a upstaged (k=9 dropped, a becomes constant)
    let a = report.schema.expect_id("a");
    assert!(report
        .triples
        .iter()
        .any(|t| t.fd == Fd::new(AttrSet::EMPTY, a) && t.kind == FdKind::UpstagedLeft));
}
