//! Parallel/sequential equivalence (satellite of the CSR + parallelism
//! PR): every miner, the full InFine pipeline, and the maintenance
//! engine must produce *byte-identical* output whether the `infine-exec`
//! pool runs one worker (pure sequential) or several. Parallelism in
//! this workspace only changes *when* partitions get computed, never
//! which FDs are derived — these tests pin that contract.
//!
//! The worker count is a process-wide knob, so every test serializes on
//! one lock before flipping it.

use infine_algebra::ViewSpec;
use infine_core::InFine;
use infine_datagen::{find, random_churn, DatasetKind, Scale};
use infine_discovery::{Algorithm, FdSet};
use infine_incremental::MaintenanceEngine;
use infine_relation::{Database, DeltaRelation, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes tests that flip the global worker count.
static EXEC_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_counts<R: PartialEq + std::fmt::Debug>(label: &str, run: impl Fn() -> R) {
    let _guard = EXEC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    infine_exec::set_parallelism(1);
    let sequential = run();
    for threads in [2usize, 4] {
        infine_exec::set_parallelism(threads);
        let parallel = run();
        assert_eq!(
            sequential, parallel,
            "{label}: output diverged at {threads} workers"
        );
    }
    infine_exec::set_parallelism(0);
}

fn mining_targets() -> Vec<Relation> {
    let db = DatasetKind::Pte.generate(Scale::of(0.01));
    let mimic = DatasetKind::Mimic.generate(Scale::of(0.005));
    let tpch = DatasetKind::Tpch.generate(Scale::of(0.005));
    let ptc = DatasetKind::Ptc.generate(Scale::of(0.005));
    let mut rels = vec![
        db.expect("atm").clone(),
        db.expect("drug").clone(),
        mimic.expect("patients").clone(),
        tpch.expect("supplier").clone(),
        ptc.expect("bond").clone(),
    ];
    // Keep the quadratic miners honest but fast.
    rels.iter_mut().for_each(|r| {
        if r.nrows() > 400 {
            let keep: Vec<u32> = (0..400).collect();
            *r = r.gather(&keep, r.name.clone());
        }
    });
    rels
}

#[test]
fn every_miner_is_thread_count_invariant() {
    let rels = mining_targets();
    for algo in [
        Algorithm::Tane,
        Algorithm::Fun,
        Algorithm::FastFds,
        Algorithm::DepMiner,
        Algorithm::HyFd,
        Algorithm::Levelwise,
    ] {
        for rel in &rels {
            with_thread_counts(&format!("{} on {}", algo.name(), rel.name), || {
                algo.discover(rel).to_sorted_vec()
            });
        }
    }
}

fn pipeline_cases() -> Vec<(Database, ViewSpec)> {
    [
        "pte_atm_drug",
        "ptc_connected_bond",
        "mimic_q_patients_admissions",
        "tpch_q2",
    ]
    .iter()
    .map(|id| {
        let case = find(id).unwrap_or_else(|| panic!("unknown case {id}"));
        (case.dataset.generate(Scale::of(0.005)), case.spec)
    })
    .collect()
}

#[test]
fn pipeline_discovery_is_thread_count_invariant() {
    for (db, spec) in pipeline_cases() {
        with_thread_counts(&format!("discover {spec}"), || {
            let report = InFine::default().discover(&db, &spec).expect("pipeline");
            report.triples
        });
    }
}

#[test]
fn maintenance_rounds_are_thread_count_invariant() {
    let case = find("tpch_q2").expect("catalog case");
    let db = case.dataset.generate(Scale::of(0.005));
    with_thread_counts("maintenance tpch_q2", || {
        let mut engine = MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
            .expect("bootstrap");
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut outputs: Vec<(Vec<infine_discovery::Fd>, usize)> = Vec::new();
        for _ in 0..3 {
            let rel = engine.database().expect("supplier");
            let delta = random_churn(&mut rng, rel, 0.05);
            let report = engine
                .apply_one(&DeltaRelation::new("supplier", delta.batch))
                .expect("apply");
            outputs.push((report.cover.to_sorted_vec(), report.triples.len()));
        }
        (outputs, engine.fd_set().to_sorted_vec())
    });
}

#[test]
fn incremental_base_fds_still_skip_premining() {
    // The hoisted parallel step-1 must not re-mine labels the caller
    // supplied (the incremental engine depends on this staying free).
    let _guard = EXEC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    infine_exec::set_parallelism(4);
    let case = find("pte_atm_drug").expect("catalog case");
    let db = case.dataset.generate(Scale::of(0.01));
    let base_fds: infine_core::BaseFds = infine_core::base_scopes(&db, &case.spec)
        .expect("scopes")
        .into_iter()
        .map(|s| {
            let rel = s.project(&db);
            let fds: FdSet = Algorithm::Levelwise.discover_restricted(&rel, rel.attr_set());
            (s.label, fds)
        })
        .collect();
    let full = InFine::default().discover(&db, &case.spec).expect("full");
    let inc = InFine::default()
        .discover_incremental(&db, &case.spec, &base_fds)
        .expect("incremental");
    infine_exec::set_parallelism(0);
    assert_eq!(full.triples, inc.triples);
    assert_eq!(inc.timings.base_mining, std::time::Duration::ZERO);
}
