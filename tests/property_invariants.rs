//! Property-based invariants (proptest) across the whole stack:
//! partitions, the four miners, Armstrong reasoning, the algebra, and the
//! InFine pipeline against the brute-force oracle on random instances.

use infine_algebra::{execute, JoinOp, ViewSpec};
use infine_core::{all_hold, InFine};
use infine_discovery::{
    depminer, fastfds, fun, hyfd, mine_afds, mine_fds, mine_fds_bruteforce, same_fds, tane, Fd,
    FdSet,
};
use infine_partitions::{fd_holds, fd_holds_bruteforce, Pli, PliCache};
use infine_relation::{relation_from_rows, AttrSet, Database, Relation, Value};
use proptest::prelude::*;

/// A small random relation: `ncols` in 2..=4, up to 12 rows, tiny domains
/// (tiny domains maximize FD/violation structure).
fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=4, 0usize..=12)
        .prop_flat_map(|(ncols, nrows)| {
            proptest::collection::vec(proptest::collection::vec(0i64..4, ncols), nrows..=nrows)
        })
        .prop_map(|rows| {
            let ncols = rows.first().map(Vec::len).unwrap_or(2);
            let names: Vec<String> = (0..ncols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let value_rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|&v| if v == 3 { Value::Null } else { Value::Int(v) })
                        .collect()
                })
                .collect();
            let refs: Vec<&[Value]> = value_rows.iter().map(|r| r.as_slice()).collect();
            relation_from_rows("t", &name_refs, &refs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_agree_with_bruteforce(rel in arb_relation()) {
        let attrs = rel.attr_set();
        let oracle = mine_fds_bruteforce(&rel, attrs);
        for (name, fds) in [
            ("tane", tane(&rel, attrs)),
            ("fun", fun(&rel, attrs)),
            ("fastfds", fastfds(&rel, attrs)),
            ("depminer", depminer(&rel, attrs)),
            ("hyfd", hyfd(&rel, attrs)),
            ("levelwise", mine_fds(&rel, attrs)),
        ] {
            prop_assert!(
                same_fds(&fds, &oracle),
                "{name} disagrees:\n{:?}\nvs oracle\n{:?}",
                fds.to_sorted_vec(), oracle.to_sorted_vec()
            );
        }
    }

    #[test]
    fn pli_fd_check_matches_bruteforce(rel in arb_relation()) {
        let n = rel.ncols();
        for lhs_bits in 1u64..(1 << n) {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..n {
                if lhs.contains(rhs) { continue; }
                prop_assert_eq!(
                    fd_holds(&rel, lhs, rhs),
                    fd_holds_bruteforce(&rel, lhs, rhs)
                );
            }
        }
    }

    #[test]
    fn pli_product_equals_direct_grouping(rel in arb_relation()) {
        let n = rel.ncols();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = Pli::for_attr(&rel, i);
                let b = Pli::for_attr(&rel, j);
                let product = a.intersect(&b);
                let direct = Pli::for_set(&rel, [i, j].into_iter().collect());
                prop_assert_eq!(product, direct);
            }
        }
    }

    #[test]
    fn g3_is_bounded_and_zero_iff_exact(rel in arb_relation()) {
        if rel.nrows() == 0 { return Ok(()); }
        let mut cache = PliCache::new(&rel);
        let n = rel.ncols();
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                let g = cache.g3(AttrSet::single(a), b);
                prop_assert!((0.0..=1.0).contains(&g));
                prop_assert_eq!(g == 0.0, cache.fd_holds(AttrSet::single(a), b));
            }
        }
    }

    #[test]
    fn afds_superset_of_exact_and_monotone_in_epsilon(rel in arb_relation()) {
        let attrs = rel.attr_set();
        let exact = mine_fds(&rel, attrs);
        let loose = mine_afds(&rel, attrs, 0.3);
        // every exact FD is implied by the AFD set (antichains may shrink
        // lhs further under the weaker validity)
        for fd in exact.iter() {
            prop_assert!(
                loose.has_subset_lhs(fd.lhs, fd.rhs),
                "AFD set lost exact FD {fd}"
            );
        }
    }

    #[test]
    fn closure_laws(rel in arb_relation()) {
        let fds = mine_fds(&rel, rel.attr_set());
        let n = rel.ncols();
        for bits in 0u64..(1 << n) {
            let x = AttrSet::from_bits(bits);
            let cx = fds.closure(x);
            // extensive, monotone (via subset sampling), idempotent
            prop_assert!(x.is_subset(cx));
            prop_assert_eq!(fds.closure(cx), cx);
            for b in x.iter() {
                let sub = x.without(b);
                prop_assert!(fds.closure(sub).is_subset(cx));
            }
        }
    }

    #[test]
    fn minimal_cover_is_equivalent(rel in arb_relation()) {
        let fds = mine_fds(&rel, rel.attr_set());
        let cover = fds.minimal_cover();
        prop_assert!(cover.equivalent(&fds));
        prop_assert!(cover.len() <= fds.len());
    }

    #[test]
    fn theorem1_selection_preserves_fds(rel in arb_relation()) {
        if rel.nrows() == 0 { return Ok(()); }
        // σ keeps rows with c0 = 0 (dictionary-coded: compare value)
        let rows: Vec<u32> = (0..rel.nrows() as u32)
            .filter(|&r| rel.value(r as usize, 0) == &Value::Int(0))
            .collect();
        let filtered = rel.gather(&rows, "σ");
        let before = mine_fds(&rel, rel.attr_set());
        // every FD valid before stays valid after row removal
        prop_assert!(all_hold(&filtered, &before));
    }

    #[test]
    fn theorem1_inner_join_preserves_side_fds(l in arb_relation(), r in arb_relation()) {
        let mut db = Database::new();
        let lrel = rename(&l, "l");
        let rrel = rename(&r, "r");
        db.insert(lrel.clone());
        db.insert(rrel.clone());
        let spec = ViewSpec::base("l").join(
            ViewSpec::base("r"),
            JoinOp::Inner,
            &[("l.c0", "r.c0")],
        );
        let view = execute(&spec, &db).unwrap();
        // left FDs hold on the view's left columns (ids 0..ncols_l)
        let lfds = mine_fds(&lrel, lrel.attr_set());
        prop_assert!(all_hold(&view, &lfds));
        // right FDs hold with offset ids
        let rfds = mine_fds(&rrel, rrel.attr_set());
        let shifted: FdSet = rfds
            .iter()
            .map(|fd| Fd::new(
                fd.lhs.iter().map(|a| a + lrel.ncols()).collect::<AttrSet>(),
                fd.rhs + lrel.ncols(),
            ))
            .collect::<Vec<_>>()
            .into_iter()
            .fold(FdSet::new(), |mut s, fd| { s.insert_unchecked(fd); s });
        prop_assert!(all_hold(&view, &shifted));
    }

    #[test]
    fn infine_matches_oracle_on_random_joins(l in arb_relation(), r in arb_relation()) {
        let mut db = Database::new();
        db.insert(rename(&l, "l"));
        db.insert(rename(&r, "r"));
        let spec = ViewSpec::base("l").join(
            ViewSpec::base("r"),
            JoinOp::Inner,
            &[("l.c0", "r.c0")],
        );
        let view = execute(&spec, &db).unwrap();
        let report = InFine::default().discover(&db, &spec).unwrap();
        // align by display name
        let map: Vec<usize> = (0..report.schema.len())
            .map(|i| view.schema.expect_id(report.schema.name(i)))
            .collect();
        let infds = report.triples.iter().fold(FdSet::new(), |mut s, t| {
            s.insert_unchecked(Fd::new(
                t.fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                map[t.fd.rhs],
            ));
            s
        });
        prop_assert!(all_hold(&view, &infds), "correctness violated");
        let oracle = tane(&view, view.attr_set());
        prop_assert!(
            infds.equivalent(&oracle),
            "completeness violated:\nInFine {:?}\noracle {:?}",
            infds.to_sorted_vec(), oracle.to_sorted_vec()
        );
    }

    #[test]
    fn lemma1_join_order_invariance(l in arb_relation(), r in arb_relation()) {
        let mut db = Database::new();
        db.insert(rename(&l, "l"));
        db.insert(rename(&r, "r"));
        let ab = ViewSpec::base("l").join(
            ViewSpec::base("r"), JoinOp::Inner, &[("l.c0", "r.c0")]);
        let ba = ViewSpec::base("r").join(
            ViewSpec::base("l"), JoinOp::Inner, &[("r.c0", "l.c0")]);
        let ra = InFine::default().discover(&db, &ab).unwrap();
        let rb = InFine::default().discover(&db, &ba).unwrap();
        // same FDs up to the schema permutation (align by names)
        let map: Vec<usize> = (0..ra.schema.len())
            .map(|i| rb.schema.expect_id(ra.schema.name(i)))
            .collect();
        let fa = ra.triples.iter().fold(FdSet::new(), |mut s, t| {
            s.insert_unchecked(Fd::new(
                t.fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                map[t.fd.rhs],
            ));
            s
        });
        let fb = rb.triples.iter().fold(FdSet::new(), |mut s, t| {
            s.insert_unchecked(t.fd);
            s
        });
        prop_assert!(fa.equivalent(&fb), "join order changed the FD set");
    }
}

/// Rename a generated relation (and its lineage) to `name`.
fn rename(rel: &Relation, name: &str) -> Relation {
    let names: Vec<String> = rel.schema.names().map(str::to_string).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<Vec<Value>> = (0..rel.nrows()).map(|r| rel.row(r)).collect();
    let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
    relation_from_rows(name, &name_refs, &refs)
}
