//! Failure injection: malformed specs, degenerate instances, and edge
//! shapes must produce clean errors or sane results — never panics or
//! silent wrong answers.

use infine_algebra::{execute, AlgebraError, JoinOp, Predicate, ViewSpec};
use infine_core::{InFine, InFineError};
use infine_discovery::Algorithm;
use infine_relation::{relation_from_rows, Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "t",
        &["a", "b"],
        &[&[Value::Int(1), Value::Int(2)]],
    ));
    db
}

#[test]
fn unknown_relation_is_reported() {
    let spec = ViewSpec::base("missing");
    match InFine::default().discover(&db(), &spec) {
        Err(InFineError::Algebra(AlgebraError::UnknownRelation(r))) => {
            assert_eq!(r, "missing")
        }
        other => panic!("expected UnknownRelation, got {other:?}"),
    }
}

#[test]
fn unknown_attribute_in_predicate() {
    let spec = ViewSpec::base("t").select(Predicate::eq("zzz", 1i64));
    assert!(matches!(
        InFine::default().discover(&db(), &spec),
        Err(InFineError::Algebra(AlgebraError::UnknownAttribute { .. }))
    ));
}

#[test]
fn unknown_attribute_in_join_condition() {
    let mut d = db();
    d.insert(relation_from_rows(
        "u",
        &["a", "c"],
        &[&[Value::Int(1), Value::Int(3)]],
    ));
    let spec = ViewSpec::base("t").join(ViewSpec::base("u"), JoinOp::Inner, &[("a", "nope")]);
    assert!(matches!(
        InFine::default().discover(&d, &spec),
        Err(InFineError::Algebra(AlgebraError::UnknownAttribute { .. }))
    ));
}

#[test]
fn duplicate_unaliased_table_rejected_but_aliased_accepted() {
    let spec = ViewSpec::base("t").join(ViewSpec::base("t"), JoinOp::Inner, &[("a", "a")]);
    assert!(matches!(
        InFine::default().discover(&db(), &spec),
        Err(InFineError::DuplicateBaseLabel(_))
    ));
    let spec = ViewSpec::base_as("t", "t1").join(
        ViewSpec::base_as("t", "t2"),
        JoinOp::Inner,
        &[("a", "a")],
    );
    assert!(InFine::default().discover(&db(), &spec).is_ok());
}

#[test]
fn empty_base_relation_flows_through_every_operator() {
    let mut d = Database::new();
    d.insert(relation_from_rows("e", &["x", "y"], &[]));
    d.insert(relation_from_rows(
        "t",
        &["x", "z"],
        &[&[Value::Int(1), Value::Int(2)]],
    ));
    for spec in [
        ViewSpec::base("e"),
        ViewSpec::base("e").select(Predicate::eq("x", 1i64)),
        ViewSpec::base("e").project(&["y"]),
        ViewSpec::base("e").inner_join(ViewSpec::base("t"), &["x"]),
        ViewSpec::base("t").join(ViewSpec::base("e"), JoinOp::LeftOuter, &[("x", "x")]),
    ] {
        let report = InFine::default()
            .discover(&d, &spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        // on an empty instance every attribute is constant
        let view = execute(&spec, &d).unwrap();
        if view.nrows() == 0 {
            assert_eq!(report.triples.len(), view.ncols(), "spec {spec}");
        }
    }
}

#[test]
fn single_row_instances_make_everything_constant() {
    let report = InFine::default()
        .discover(&db(), &ViewSpec::base("t"))
        .unwrap();
    // one row ⇒ ∅ → a, ∅ → b
    assert_eq!(report.triples.len(), 2);
    assert!(report.triples.iter().all(|t| t.fd.lhs.is_empty()));
}

#[test]
fn selection_keeping_everything_adds_nothing() {
    let mut d = Database::new();
    d.insert(relation_from_rows(
        "t",
        &["a", "b"],
        &[
            &[Value::Int(1), Value::Int(1)],
            &[Value::Int(2), Value::Int(1)],
        ],
    ));
    let base = InFine::default()
        .discover(&d, &ViewSpec::base("t"))
        .unwrap();
    let selected = InFine::default()
        .discover(&d, &ViewSpec::base("t").select(Predicate::True))
        .unwrap();
    assert_eq!(base.triples.len(), selected.triples.len());
    assert_eq!(
        selected
            .triples
            .iter()
            .filter(|t| t.kind == infine_core::FdKind::UpstagedSelection)
            .count(),
        0
    );
}

#[test]
fn all_baselines_handle_degenerate_tables() {
    for rel in [
        relation_from_rows("empty", &["a", "b"], &[]),
        relation_from_rows("one", &["a", "b"], &[&[Value::Int(1), Value::Int(2)]]),
        relation_from_rows(
            "allnull",
            &["a", "b"],
            &[&[Value::Null, Value::Null], &[Value::Null, Value::Null]],
        ),
        relation_from_rows("single_col", &["a"], &[&[Value::Int(1)], &[Value::Int(2)]]),
    ] {
        for algo in [
            Algorithm::Tane,
            Algorithm::Fun,
            Algorithm::FastFds,
            Algorithm::HyFd,
            Algorithm::Levelwise,
        ] {
            let fds = algo.discover(&rel);
            // must agree with the brute-force oracle
            let oracle = infine_discovery::mine_fds_bruteforce(&rel, rel.attr_set());
            assert!(
                infine_discovery::same_fds(&fds, &oracle),
                "{} on {}: {:?} vs {:?}",
                algo.name(),
                rel.name,
                fds.to_sorted_vec(),
                oracle.to_sorted_vec()
            );
        }
    }
}

#[test]
fn cross_join_with_empty_condition_works() {
    let mut d = Database::new();
    d.insert(relation_from_rows(
        "l",
        &["a"],
        &[&[Value::Int(1)], &[Value::Int(2)]],
    ));
    d.insert(relation_from_rows("r", &["b"], &[&[Value::Int(7)]]));
    let spec = ViewSpec::base("l").join(ViewSpec::base("r"), JoinOp::Inner, &[]);
    let view = execute(&spec, &d).unwrap();
    assert_eq!(view.nrows(), 2); // cross product
    let report = InFine::default().discover(&d, &spec).unwrap();
    assert!(infine_core::all_hold(&view, &report.fd_set()));
}
