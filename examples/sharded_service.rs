//! Sharded maintenance as a service: producers feed delta batches into a
//! channel, a background loop coalesces them per table, fans each round
//! out over per-shard maintenance engines, and emits round reports with
//! exact provenance — producers never block on maintenance.
//!
//! The demo runs the paper's TPC-H Q2-style catalog view, shards its
//! base tables across 4 key-range fragments with **tombstoned deletes**
//! (delete rounds mark bits instead of compacting columns), streams
//! three bursts of churn through the service with an automatic vacuum
//! policy (fragments compact in parallel between rounds once a fifth of
//! their rows are dead), issues one explicit vacuum command, and finally
//! verifies that the merged state is indistinguishable from full
//! re-discovery.
//!
//! Along the way it polls [`MaintenanceService::stats`] — the lock-free
//! operational snapshot (queue depth, rounds completed, last-round
//! latency, worker liveness) a production health check would poll — and
//! honors the observability env knobs: set `INFINE_METRICS_DUMP=out.prom`
//! to write the full Prometheus exposition at exit, or
//! `INFINE_METRICS_ADDR=127.0.0.1:9184` to scrape it live.
//!
//! Run with: `cargo run --release --example sharded_service`

use infine_core::InFine;
use infine_datagen::{find, random_churn, Scale};
use infine_incremental::{
    DeletePolicy, InsertPolicy, MaintenanceService, ShardedEngine, VacuumPolicy, ViewMode,
};
use infine_relation::{Database, DeltaRelation};
use std::time::Instant;

fn main() {
    infine_obs::serve_from_env();
    let case = find("tpch_q2").expect("catalog view");
    let db = case.dataset.generate(Scale::of(0.02));
    // The producer keeps its own mirror of the tables it feeds, so every
    // batch addresses the logical stream state (the service's contract).
    let mut mirror = db.clone();

    // One maintenance engine per shard, each owning a contiguous rid
    // range of every base table; covers merge at read time.
    let t0 = Instant::now();
    let engine = ShardedEngine::with_options(
        InFine::default(),
        db,
        case.spec.clone(),
        4,
        InsertPolicy::default(),
        DeletePolicy::Tombstone,
        ViewMode::default(),
    )
    .expect("bootstrap");
    println!(
        "bootstrapped {} shards: {} FDs on {} in {:.2?}",
        engine.shards(),
        engine.report().triples.len(),
        case.label,
        t0.elapsed()
    );
    for table in case.spec.base_tables() {
        println!(
            "  {table}: fragments {:?}",
            engine.router().fragment_rows(table)
        );
    }

    // Move the engine onto the service loop: deltas in, reports out.
    // The policy vacuums between rounds whenever >20% of the fragment
    // rows are dead — the ingest loop never stops for it.
    let service = MaintenanceService::spawn_with_policy(engine, VacuumPolicy::at_fraction(0.2));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);

    // A producer bursts batches at the service and moves on immediately;
    // the loop coalesces whatever queued up per table into one round.
    let mut produce = |mirror: &mut Database, table: &str, fraction: f64| -> DeltaRelation {
        let delta = random_churn(&mut rng, mirror.expect(table), fraction);
        let advanced = mirror
            .remove(table)
            .expect("mirror table")
            .apply_delta(&delta.batch, table)
            .0;
        mirror.insert(advanced);
        delta
    };
    for burst in 1..=3 {
        service
            .ingest(vec![produce(&mut mirror, "supplier", 0.02)])
            .expect("worker alive");
        if burst == 2 {
            service
                .ingest(vec![produce(&mut mirror, "nation", 0.05)])
                .expect("worker alive");
        }
        // Reports arrive whenever rounds complete; drain what's ready.
        while let Some(report) = service.try_recv_report() {
            let report = report.expect("round");
            if let Some(vac) = report.vacuum {
                println!(
                    "async: vacuumed {} relations, {} rows + {} dict entries reclaimed",
                    vac.relations, vac.rows_dropped, vac.dict_entries_dropped
                );
            }
            println!("async: {}", report.summary());
        }
        // The operational snapshot a health check would poll: queue
        // depth still to drain, rounds done, and last-round latency.
        let stats = service.stats();
        println!(
            "stats after burst {burst}: queue_depth={} rounds={} last_round={:.2?} alive={}",
            stats.queue_depth, stats.rounds_completed, stats.last_round, stats.worker_alive
        );
    }

    // An explicit vacuum command: drains pending work, compacts every
    // fragment in parallel, and reports the pass on the round report.
    service.vacuum().expect("worker alive");
    loop {
        let report = service.recv_report().expect("worker alive").expect("round");
        if let Some(vac) = report.vacuum {
            println!(
                "vacuum command: {} relations compacted, {} rows + {} dict entries dropped in {:.2?}",
                vac.relations, vac.rows_dropped, vac.dict_entries_dropped, vac.duration
            );
            break;
        }
        println!("async: {}", report.summary());
    }

    // Drain: each flush guarantees at least one more round report, so
    // this loop never blocks forever; once the queue is empty the flush
    // round re-emits the state with every FD untouched.
    loop {
        service.flush().expect("worker alive");
        let report = service.recv_report().expect("worker alive").expect("round");
        println!("drained: {}", report.summary());
        if report.count_status(infine_incremental::FdStatus::Untouched) == report.cover.len() {
            break;
        }
    }

    let stats = service.stats();
    println!(
        "final stats: queue_depth={} rounds={} last_round={:.2?} alive={}",
        stats.queue_depth, stats.rounds_completed, stats.last_round, stats.worker_alive
    );
    assert_eq!(stats.queue_depth, 0, "drained service has an empty queue");

    // Shut down (any still-pending batches would run in a final round)
    // and verify the merged state against a from-scratch discovery.
    let engine = service.shutdown().expect("worker alive");
    assert_eq!(engine.tombstone_stats().dead_rows(), 0);
    let fresh = InFine::default()
        .discover(engine.database(), engine.spec())
        .expect("full discovery");
    assert_eq!(engine.report().triples, fresh.triples);
    println!("verified: sharded service state == full re-discovery");
    infine_obs::dump_if_requested();
}
