//! Constraint debugging with selections (Algorithm 2 in action): a data
//! steward filters a dirty feed and wants to know which quality rules
//! *become* enforceable on the clean subset.
//!
//! The sensor feed violates `sensor → unit` only in rows flagged as
//! calibration errors; selecting the valid rows upstages the FD to exact,
//! and InFine reports it with an `upstaged selection` provenance triple
//! pointing at the exact sub-query that made it true.
//!
//! ```text
//! cargo run --example constraint_debugging
//! ```

use infine_algebra::{Predicate, ViewSpec};
use infine_core::{FdKind, InFine};
use infine_relation::{relation_from_rows, Database, Value};

fn main() {
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "readings",
        &["sensor", "unit", "value", "status"],
        &[
            &[
                Value::str("s1"),
                Value::str("°C"),
                Value::float(21.5),
                Value::str("ok"),
            ],
            &[
                Value::str("s1"),
                Value::str("°C"),
                Value::float(22.0),
                Value::str("ok"),
            ],
            // calibration error: s1 suddenly reports Fahrenheit
            &[
                Value::str("s1"),
                Value::str("°F"),
                Value::float(71.2),
                Value::str("cal-error"),
            ],
            &[
                Value::str("s2"),
                Value::str("hPa"),
                Value::float(1013.0),
                Value::str("ok"),
            ],
            &[
                Value::str("s2"),
                Value::str("hPa"),
                Value::float(1009.2),
                Value::str("ok"),
            ],
            &[
                Value::str("s3"),
                Value::str("%"),
                Value::float(45.0),
                Value::str("ok"),
            ],
        ],
    ));

    // On the raw feed, sensor → unit is only approximate:
    let raw = ViewSpec::base("readings");
    let raw_report = InFine::default().discover(&db, &raw).expect("raw");
    let has_fd = |report: &infine_core::InFineReport| {
        report
            .triples
            .iter()
            .find(|t| {
                report.schema.name(t.fd.rhs) == "unit"
                    && t.fd.lhs.len() == 1
                    && t.fd.lhs.iter().all(|a| report.schema.name(a) == "sensor")
            })
            .cloned()
    };
    println!(
        "raw feed: sensor → unit discovered? {}",
        has_fd(&raw_report).is_some()
    );

    // After filtering the flagged rows, the FD upstages to exact:
    let clean = ViewSpec::base("readings").select(Predicate::eq("status", "ok"));
    let clean_report = InFine::default().discover(&db, &clean).expect("clean");
    match has_fd(&clean_report) {
        Some(t) => {
            assert_eq!(t.kind, FdKind::UpstagedSelection);
            println!(
                "clean feed: sensor → unit holds — {} (first valid in: {})",
                t.kind, t.subquery
            );
        }
        None => println!("clean feed: FD still missing?!"),
    }

    println!("\nall FDs on the clean view:");
    for t in &clean_report.triples {
        println!("  {}", t.render(&clean_report.schema));
    }
}
