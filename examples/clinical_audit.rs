//! The paper's Fig. 1 motivating example, reproduced end to end: the
//! MIMIC-III excerpt (PATIENT ⋈ ADMISSION on subject_id), with every view
//! FD classified by provenance — the colour coding of the figure becomes
//! the `kind` column here.
//!
//! A data steward can read off: which base-table constraints survive the
//! integration, which approximate FDs became exact because violating
//! patients have no admissions (upstaged), which FDs follow logically
//! through the join key (inferred), and which genuinely new cross-table
//! FDs the join created (joinFD).
//!
//! ```text
//! cargo run --example clinical_audit
//! ```

use infine_algebra::ViewSpec;
use infine_core::{afd_origins, FdKind, InFine};
use infine_relation::{relation_from_rows, Database, Value};

fn fig1_database() -> Database {
    let patient = relation_from_rows(
        "patient",
        &["subject_id", "gender", "dob", "dod", "expire_flag"],
        &[
            &[
                Value::Int(249),
                Value::str("F"),
                Value::str("13/03/75"),
                Value::Null,
                Value::Int(0),
            ],
            &[
                Value::Int(250),
                Value::str("F"),
                Value::str("27/12/64"),
                Value::str("22/11/88 00:00"),
                Value::Int(1),
            ],
            &[
                Value::Int(251),
                Value::str("M"),
                Value::str("15/03/90"),
                Value::Null,
                Value::Int(0),
            ],
            &[
                Value::Int(252),
                Value::str("M"),
                Value::str("06/03/78"),
                Value::Null,
                Value::Int(0),
            ],
            &[
                Value::Int(257),
                Value::str("F"),
                Value::str("03/04/31"),
                Value::str("08/07/21 00:00"),
                Value::Int(1),
            ],
        ],
    );
    let admission = relation_from_rows(
        "admission",
        &[
            "subject_id",
            "admittime",
            "admission_location",
            "insurance",
            "diagnosis",
            "h_expire_flag",
        ],
        &[
            &[
                Value::Int(247),
                Value::str("03/08/56 20:35"),
                Value::str("CLINIC REFERRAL/PREMATURE"),
                Value::str("UNOBTAINABLE"),
                Value::str("CHEST PAIN"),
                Value::Int(0),
            ],
            &[
                Value::Int(248),
                Value::str("19/10/42 16:30"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Private"),
                Value::str("S/P MOTOR ROLLOR"),
                Value::Int(0),
            ],
            &[
                Value::Int(249),
                Value::str("17/12/49 20:41"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Medicare"),
                Value::str("UNSTABLE ANGINA ASTHMA BRONCHITIS"),
                Value::Int(0),
            ],
            &[
                Value::Int(249),
                Value::str("03/02/55 20:16"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Medicare"),
                Value::str("CHEST PAIN"),
                Value::Int(0),
            ],
            &[
                Value::Int(249),
                Value::str("27/04/56 15:33"),
                Value::str("PHYS REFERRAL/NORMAL DELI"),
                Value::str("Medicare"),
                Value::str("GI BLEEDING\\COLONOSCOPY"),
                Value::Int(0),
            ],
            &[
                Value::Int(250),
                Value::str("12/11/88 09:22"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Self Pay"),
                Value::str("PNEUMONIA R/O TB"),
                Value::Int(1),
            ],
            &[
                Value::Int(251),
                Value::str("27/07/10 06:46"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Private"),
                Value::str("INTRACRANIAL HEAD BLEED"),
                Value::Int(0),
            ],
            &[
                Value::Int(252),
                Value::str("31/03/33 04:24"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Private"),
                Value::str("GASTROINTESTINAL BLEED"),
                Value::Int(0),
            ],
            &[
                Value::Int(252),
                Value::str("15/08/33 04:23"),
                Value::str("EMERGENCY ROOM ADMIT"),
                Value::str("Private"),
                Value::str("GASTROINTESTINAL BLEED"),
                Value::Int(0),
            ],
            &[
                Value::Int(253),
                Value::str("21/01/74 20:58"),
                Value::str("TRANSFER FROM HOSP/EXTRAM"),
                Value::str("Medicare"),
                Value::str("COMPLETE HEART BLOCK\\PACEMAKER IMPLANT"),
                Value::Int(0),
            ],
        ],
    );
    let mut db = Database::new();
    db.insert(patient);
    db.insert(admission);
    db
}

fn main() {
    let db = fig1_database();
    let view = ViewSpec::base("patient").inner_join(ViewSpec::base("admission"), &["subject_id"]);
    let report = InFine::default().discover(&db, &view).expect("pipeline");

    println!("V: SELECT * FROM patient ⋈ admission ON subject_id\n");
    println!(
        "{} exact minimal FDs discovered on the view (paper Fig. 1: 42, incl. both key columns)\n",
        report.triples.len()
    );
    for kind in FdKind::ALL {
        let fds: Vec<String> = report
            .triples
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| format!("    {}", t.fd.render(&report.schema)))
            .collect();
        if fds.is_empty() {
            continue;
        }
        println!("[{}] — {} FDs", kind.label(), fds.len());
        for f in fds {
            println!("{f}");
        }
        println!();
    }

    // The paper's flagship upstaged FD: expire_flag ⇁ dod is approximate
    // in PATIENT (patient #257 violates it) and exact in the view, because
    // #257 has no admissions and disappears from the join.
    let ef = report.schema.expect_id("expire_flag");
    let dod = report.schema.expect_id("dod");
    let upstaged = report
        .triples
        .iter()
        .find(|t| t.fd.rhs == dod && t.fd.lhs == infine_relation::AttrSet::single(ef));
    match upstaged {
        Some(t) => println!(
            "✔ expire_flag → dod became exact via the join (kind: {}, sub-query: {})",
            t.kind, t.subquery
        ),
        None => println!("✘ expected the upstaged FD expire_flag → dod"),
    }

    // Fig. 1's grey class: upstaged FDs that were *approximate* FDs on
    // their base table (expire_flag ⇁₁ dod — one violating patient).
    println!("\nAFD origins of the upstaged FDs (the figure's grey class):");
    for o in afd_origins(&db, &report) {
        let t = &report.triples[o.triple_index];
        println!(
            "  {}  — g3 {:.3} on {} ({} violating row{})",
            t.fd.render(&report.schema),
            o.g3,
            o.base_table,
            o.violating_rows,
            if o.violating_rows == 1 { "" } else { "s" },
        );
    }
}
