//! Streaming updates: keep a view's FD set current under a delta feed.
//!
//! A hospital keeps a `patients ⋈ admissions` integration view (the
//! paper's Q(patients, admissions) from Table II). New admissions stream
//! in continuously, patients are occasionally merged out (deleted), and
//! the data-quality team wants the view's functional dependencies — with
//! provenance — kept current without re-running discovery from scratch
//! after every batch.
//!
//! Run with: `cargo run --release --example streaming_updates`

use infine_core::InFine;
use infine_datagen::{find, random_churn, Scale};
use infine_incremental::{MaintenanceEngine, MaintenanceMode};
use infine_relation::DeltaBatch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // MIMIC-style synthetic hospital data and the paper's catalog view.
    let case = find("mimic_q_patients_admissions").expect("catalog view");
    let db = case.dataset.generate(Scale::of(0.02));

    // Exact-provenance mode: every round re-derives the full triple set
    // (kinds + justifying sub-queries), with base mining skipped.
    let t0 = Instant::now();
    let mut engine =
        MaintenanceEngine::new(InFine::default(), db, case.spec.clone()).expect("bootstrap");
    println!(
        "bootstrapped: {} FDs on {} in {:.2?}\n",
        engine.report().triples.len(),
        case.label,
        t0.elapsed()
    );

    // ---- The delta feed loop ----
    let mut rng = StdRng::seed_from_u64(42);
    for round in 1..=4 {
        // A batch of new admissions (plus a little churn on patients
        // every other round).
        let mut deltas = Vec::new();
        deltas.push(random_churn(
            &mut rng,
            engine.database().expect("admissions"),
            0.02,
        ));
        if round % 2 == 0 {
            deltas.push(random_churn(
                &mut rng,
                engine.database().expect("patients"),
                0.01,
            ));
        }

        let report = engine.apply(&deltas).expect("maintenance");
        println!("round {round}: {}", report.summary());
        for triple in report.invalidated().take(3) {
            println!("  - lost   {}", triple.render(&report.schema));
        }
        for fd in report.fresh.iter().take(3) {
            println!("  + gained {}", fd.render(&report.schema));
        }
    }

    // ---- Cover-only mode for high-frequency feeds ----
    // When only the FD *cover* needs to stay current (alerting,
    // constraint checking), cover-only mode maintains the materialized
    // view through delta joins and skips the pipeline replay entirely —
    // one to two orders of magnitude faster per batch on multi-table
    // views. Provenance labels refresh on demand.
    engine
        .set_mode(MaintenanceMode::CoverOnly)
        .expect("mode switch");
    let mut fast_total = std::time::Duration::ZERO;
    for _ in 0..32 {
        let delta = random_churn(&mut rng, engine.database().expect("admissions"), 0.005);
        let t = Instant::now();
        engine.apply_one(&delta).expect("maintenance");
        fast_total += t.elapsed();
    }
    println!(
        "\n32 cover-only rounds in {fast_total:.2?} total ({:.2?}/round)",
        fast_total / 32
    );

    // Bring exact provenance labels back before reporting downstream.
    let t = Instant::now();
    let report = engine.refresh_provenance().expect("refresh");
    println!(
        "provenance refreshed in {:.2?}: {} triples, e.g.\n{}",
        t.elapsed(),
        report.triples.len(),
        report
            .triples
            .iter()
            .take(3)
            .map(|t| format!("  {}", t.render(&report.schema)))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The maintained state is indistinguishable from a fresh discovery.
    let fresh = InFine::default()
        .discover(engine.database(), engine.spec())
        .expect("full discovery");
    assert_eq!(engine.report().triples, fresh.triples);
    println!("\nverified: maintained state == full re-discovery");

    // Deltas are plain insert/delete batches; building one by hand:
    let mut by_hand = DeltaBatch::new();
    by_hand.delete(0);
    println!(
        "(a hand-built batch: {} deletes, {} inserts)",
        by_hand.num_deletes(),
        by_hand.num_inserts()
    );
}
