//! ETL / data-integration scenario on the TPC-H-like warehouse: build the
//! Q11*-style integrated view (partsupp ⋈ supplier ⋈ nation restricted to
//! one country) and compare
//!
//! * the **straightforward** pipeline — materialize the view, run HyFD on
//!   the result, diff against base FDs to recover coarse provenance; vs
//! * **InFine** — reuse base FDs, never materialize the full view, keep
//!   full provenance.
//!
//! ```text
//! cargo run --release --example warehouse_etl
//! ```

use infine_core::{discover_base_fds, straightforward, FdKind, InFine};
use infine_datagen::{find, DatasetKind, Scale};
use infine_discovery::Algorithm;

fn main() {
    let scale = Scale::of(
        std::env::var("INFINE_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05),
    );
    println!("generating TPC-H-like warehouse at scale {}…", scale.factor);
    let db = DatasetKind::Tpch.generate(scale);
    let case = find("tpch_q11").expect("catalog entry");
    println!("view: {}\n", case.label);

    // --- InFine ---
    let t0 = std::time::Instant::now();
    let report = InFine::default().discover(&db, &case.spec).expect("InFine");
    let infine_wall = t0.elapsed();
    let (u, i, m) = report.phase_shares();
    println!(
        "InFine:          {:>8.3}s  {} FDs  (upstage {:.0}% / infer {:.0}% / mine {:.0}%)",
        infine_wall.as_secs_f64(),
        report.triples.len(),
        u * 100.0,
        i * 100.0,
        m * 100.0
    );
    println!(
        "  partial join rows: {}   Theorem-4 pruned candidates: {}",
        report.stats.partial_join_rows, report.stats.pruned_by_theorem4
    );

    // --- straightforward (HyFD on the materialized view) ---
    let base_fds = discover_base_fds(&db, &case.spec, Algorithm::HyFd);
    let t1 = std::time::Instant::now();
    let baseline = straightforward(&db, &case.spec, Algorithm::HyFd, &base_fds).expect("baseline");
    let baseline_wall = t1.elapsed();
    println!(
        "HyFD + full SPJ: {:>8.3}s  {} FDs  (view: {} rows materialized)",
        baseline_wall.as_secs_f64(),
        baseline.fds.len(),
        baseline.view_rows
    );

    let speedup = baseline_wall.as_secs_f64() / infine_wall.as_secs_f64().max(1e-9);
    println!("\nspeedup: {speedup:.2}×");

    // What an ETL engineer actually reads off the provenance:
    println!("\nconstraints that survived integration (sample):");
    for t in report
        .triples
        .iter()
        .filter(|t| t.kind == FdKind::Base)
        .take(5)
    {
        println!("  [base]    {}", t.fd.render(&report.schema));
    }
    println!("new constraints created by the integration (sample):");
    for t in report
        .triples
        .iter()
        .filter(|t| {
            matches!(
                t.kind,
                FdKind::JoinFd | FdKind::UpstagedLeft | FdKind::UpstagedRight
            )
        })
        .take(5)
    {
        println!("  [{}] {}", t.kind.label(), t.fd.render(&report.schema));
    }
}
