//! Quickstart: discover provenance-annotated FDs on a two-table view.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use infine_algebra::ViewSpec;
use infine_core::InFine;
use infine_relation::{relation_from_rows, Database, Value};

fn main() {
    // 1. Base tables.
    let mut db = Database::new();
    db.insert(relation_from_rows(
        "employees",
        &["emp_id", "name", "dept_id"],
        &[
            &[Value::Int(1), Value::str("Ada"), Value::Int(10)],
            &[Value::Int(2), Value::str("Grace"), Value::Int(10)],
            &[Value::Int(3), Value::str("Edsger"), Value::Int(20)],
            &[Value::Int(4), Value::str("Barbara"), Value::Int(30)], // dangling dept
        ],
    ));
    db.insert(relation_from_rows(
        "departments",
        &["dept_id", "dept_name", "building"],
        &[
            &[Value::Int(10), Value::str("Compilers"), Value::str("B1")],
            &[Value::Int(20), Value::str("Algorithms"), Value::str("B2")],
            &[Value::Int(40), Value::str("Networks"), Value::str("B2")], // dangling
        ],
    ));

    // 2. An SPJ view: employees ⋈ departments.
    let view = ViewSpec::base("employees").inner_join(ViewSpec::base("departments"), &["dept_id"]);

    // 3. Run InFine: FDs of the view, each with its provenance triple,
    //    *without* materializing the full view.
    let report = InFine::default().discover(&db, &view).expect("pipeline");

    println!("view: {view}");
    println!(
        "{} FDs discovered; phases: io={:?} upstage={:?} infer={:?} mine={:?}\n",
        report.triples.len(),
        report.timings.io,
        report.timings.upstage,
        report.timings.infer,
        report.timings.mine,
    );
    for t in &report.triples {
        println!("  {}", t.render(&report.schema));
    }
}
